package core

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/tracegen"
)

// capturedPoint is a deep copy of one DecisionPoint; the producer's
// Ranked and Zones slices alias reused scratch, so the sink must copy.
type capturedPoint struct {
	Seq      int
	Time     int64
	Trigger  string
	Switched bool
	Chosen   DecisionAlt
	Ranked   []DecisionAlt
}

// captureSink deep-copies every decision it receives.
type captureSink struct {
	points []capturedPoint
}

func copyTestAlt(a DecisionAlt) DecisionAlt {
	a.Zones = append([]int(nil), a.Zones...)
	return a
}

func (c *captureSink) RecordDecision(p DecisionPoint) {
	cp := capturedPoint{Seq: p.Seq, Time: p.Time, Trigger: p.Trigger, Switched: p.Switched, Chosen: copyTestAlt(p.Chosen)}
	for _, a := range p.Ranked {
		cp.Ranked = append(cp.Ranked, copyTestAlt(a))
	}
	c.points = append(c.points, cp)
}

func altsSameChoice(a, b DecisionAlt) bool {
	if a.Bid != b.Bid || a.Policy != b.Policy || len(a.Zones) != len(b.Zones) {
		return false
	}
	for i := range a.Zones {
		if a.Zones[i] != b.Zones[i] {
			return false
		}
	}
	return true
}

// TestAdaptiveRecordsDecisions runs the Adaptive strategy with a sink
// attached and checks the shape of the decision trail: contiguous
// sequence numbers, a "begin" first trigger, nondecreasing timestamps,
// cost-sorted rivals with finite sanitized costs, and the chosen
// alternative present among them with Switched reflecting actual spec
// changes.
func TestAdaptiveRecordsDecisions(t *testing.T) {
	hist, run := window(tracegen.HighVolatility(31), 5, 2)
	cfg := testConfig(hist, run, 300)
	a := NewAdaptive()
	sink := &captureSink{}
	a.Sink = sink
	res, err := sim.Run(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res)
	}
	if len(sink.points) == 0 {
		t.Fatal("no decisions recorded")
	}
	first := sink.points[0]
	if first.Seq != 0 || first.Trigger != TriggerBegin || !first.Switched {
		t.Fatalf("first decision: %+v, want seq 0 / trigger %q / switched", first, TriggerBegin)
	}
	var prev capturedPoint
	for i, p := range sink.points {
		if p.Seq != i {
			t.Fatalf("decision %d has seq %d, want contiguous", i, p.Seq)
		}
		if i > 0 && p.Time < prev.Time {
			t.Fatalf("decision %d time %d before previous %d", i, p.Time, prev.Time)
		}
		switch p.Trigger {
		case TriggerBegin, TriggerProviderKill, TriggerHourBoundary:
		default:
			t.Fatalf("decision %d has unknown trigger %q", i, p.Trigger)
		}
		if math.IsNaN(p.Chosen.Cost) || math.IsInf(p.Chosen.Cost, 0) {
			t.Fatalf("decision %d chosen cost not sanitized: %g", i, p.Chosen.Cost)
		}
		for j := 1; j < len(p.Ranked); j++ {
			if p.Ranked[j].Cost < p.Ranked[j-1].Cost {
				t.Fatalf("decision %d ranked out of order at %d: %g < %g",
					i, j, p.Ranked[j].Cost, p.Ranked[j-1].Cost)
			}
		}
		for j, r := range p.Ranked {
			if math.IsNaN(r.Cost) || math.IsInf(r.Cost, 0) {
				t.Fatalf("decision %d rival %d cost not sanitized: %g", i, j, r.Cost)
			}
		}
		// A non-switch must re-affirm the previous choice verbatim.
		if i > 0 && !p.Switched && !altsSameChoice(p.Chosen, prev.Chosen) {
			t.Fatalf("decision %d not switched but choice changed: %+v -> %+v", i, prev.Chosen, p.Chosen)
		}
		prev = p
	}
}

// TestAdaptiveDecisionTrailDeterministic runs the same configuration
// twice and requires identical trails — the recorder must not perturb
// the simulation and must itself be deterministic.
func TestAdaptiveDecisionTrailDeterministic(t *testing.T) {
	hist, run := window(tracegen.LowVolatilityWithMegaSpike(19), 5, 2)
	cfg := testConfig(hist, run, 300)
	trail := func() ([]capturedPoint, float64) {
		a := NewAdaptive()
		sink := &captureSink{}
		a.Sink = sink
		res, err := sim.Run(cfg, a)
		if err != nil {
			t.Fatal(err)
		}
		return sink.points, res.Cost
	}
	p1, c1 := trail()
	p2, c2 := trail()
	if c1 != c2 {
		t.Fatalf("costs differ across identical runs: %g vs %g", c1, c2)
	}
	if len(p1) != len(p2) {
		t.Fatalf("trail lengths differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		a, b := p1[i], p2[i]
		if a.Seq != b.Seq || a.Time != b.Time || a.Trigger != b.Trigger || a.Switched != b.Switched ||
			!altsSameChoice(a.Chosen, b.Chosen) || len(a.Ranked) != len(b.Ranked) {
			t.Fatalf("decision %d differs:\n%+v\n%+v", i, a, b)
		}
		for j := range a.Ranked {
			if !altsSameChoice(a.Ranked[j], b.Ranked[j]) || a.Ranked[j].Cost != b.Ranked[j].Cost {
				t.Fatalf("decision %d rival %d differs", i, j)
			}
		}
	}
}

// TestAdaptiveSinkDoesNotPerturbRun checks the recorder is a pure
// observer: the run's result must be identical with and without a sink.
func TestAdaptiveSinkDoesNotPerturbRun(t *testing.T) {
	hist, run := window(tracegen.HighVolatility(23), 5, 2)
	cfg := testConfig(hist, run, 300)
	bare, err := sim.Run(cfg, NewAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	a := NewAdaptive()
	a.Sink = &captureSink{}
	sunk, err := sim.Run(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Cost != sunk.Cost || bare.FinishTime != sunk.FinishTime || bare.SpecSwitches != sunk.SpecSwitches {
		t.Fatalf("sink perturbed the run: %+v vs %+v", bare, sunk)
	}
}

// TestEvaluatorRankEmitsDecision checks the quote-path sink: one Rank
// call emits exactly one decision with trigger "rank", an unassigned
// sequence, and the full cost-ordered plan list as rivals.
func TestEvaluatorRankEmitsDecision(t *testing.T) {
	hist := estimationHistory(17)
	ev := NewEvaluator()
	sink := &captureSink{}
	ev.Sink = sink
	plans, err := ev.Rank(planRequest(hist))
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.points) != 1 {
		t.Fatalf("Rank emitted %d decisions, want 1", len(sink.points))
	}
	p := sink.points[0]
	if p.Trigger != TriggerRank || p.Seq != -1 || p.Switched {
		t.Fatalf("rank decision shape: %+v", p)
	}
	if p.Time != hist.End() {
		t.Fatalf("rank decision time %d, want history end %d", p.Time, hist.End())
	}
	if len(p.Ranked) != len(plans) {
		t.Fatalf("rank decision has %d rivals, want %d plans", len(p.Ranked), len(plans))
	}
	if !altsSameChoice(p.Chosen, p.Ranked[0]) {
		t.Fatalf("rank chosen %+v is not the top plan %+v", p.Chosen, p.Ranked[0])
	}
	for i := range plans {
		if p.Ranked[i].Bid != plans[i].Bid || p.Ranked[i].Policy != plans[i].Policy ||
			len(p.Ranked[i].Zones) != len(plans[i].Zones) {
			t.Fatalf("rival %d does not mirror plan: %+v vs %+v", i, p.Ranked[i], plans[i])
		}
	}
}
