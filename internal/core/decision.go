package core

import "math"

// Decision triggers: what woke the strategy up at a decision point.
// They mirror the paper's §7 Adaptive triggers (a zone terminated
// out-of-bid, a billing hour ended) plus the run start and the offline
// Rank entry point.
const (
	// TriggerBegin marks the initial permutation choice at run start.
	TriggerBegin = "begin"
	// TriggerProviderKill marks a decision forced by an out-of-bid
	// termination (possibly coincident with an hour boundary).
	TriggerProviderKill = "provider-kill"
	// TriggerHourBoundary marks a decision at a billing-hour boundary.
	TriggerHourBoundary = "hour-boundary"
	// TriggerRank marks an offline Evaluator.Rank planning sweep.
	TriggerRank = "rank"
)

// DecisionAlt is one (bid, zone set, policy family) permutation with its
// Inequality (1) predicted remaining cost, as scored at a decision
// point. Non-finite predicted costs are clamped to math.MaxFloat64 so
// every alternative serializes cleanly and ranks last.
type DecisionAlt struct {
	// Bid is the permutation's bid in dollars per hour.
	Bid float64
	// Zones holds trace zone indices (the redundancy set), ascending.
	Zones []int
	// Policy names the checkpoint policy family ("periodic", ...).
	Policy string
	// Cost is the predicted remaining cost in dollars.
	Cost float64
}

// DecisionPoint captures one strategy decision: the chosen permutation
// and every ranked rival with its predicted cost, ordered best-first.
// Ranked — and the Zones slices inside it — alias per-decision scratch
// buffers owned by the producer; a DecisionSink must deep-copy anything
// it retains past the RecordDecision call.
type DecisionPoint struct {
	// Seq numbers the decision within its run, starting at 0. Producers
	// without a run-scoped counter (Evaluator.Rank) pass -1 and let the
	// sink assign the sequence.
	Seq int
	// Time is the absolute simulation time of the decision (for Rank,
	// the end of the history window).
	Time int64
	// Trigger is one of the Trigger constants.
	Trigger string
	// Switched reports whether the decision changed the running spec
	// (always true at begin, false when the incumbent was kept).
	Switched bool
	// Chosen is the permutation the decision installed or kept.
	Chosen DecisionAlt
	// Ranked is the full scored grid, best-first (predicted cost
	// ascending, ties toward higher bid, then fewer zones, then policy
	// name). Empty for pinned replay decisions, which score nothing.
	Ranked []DecisionAlt
}

// DecisionSink receives decision points as they are made. Sinks must be
// safe for use from the goroutine running the simulation and must copy
// the point's slices before returning (see DecisionPoint.Ranked).
type DecisionSink interface {
	// RecordDecision is called once per decision point, in order.
	RecordDecision(p DecisionPoint)
}

// sanitizeCost clamps non-finite predicted costs (no-history sweeps
// yield +Inf) to math.MaxFloat64 so records stay JSON-encodable while
// still ranking strictly worse than any real prediction.
func sanitizeCost(c float64) float64 {
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return math.MaxFloat64
	}
	return c
}
