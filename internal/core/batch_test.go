package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// paperRegimes lists history windows cut from every trace regime the
// paper experiments run on, at several decision times each.
func paperRegimes() map[string]*trace.Set {
	out := map[string]*trace.Set{}
	sets := map[string]*trace.Set{
		"low":       tracegen.LowVolatility(17),
		"high":      tracegen.HighVolatility(17),
		"megaspike": tracegen.LowVolatilityWithMegaSpike(17),
		"moderate":  tracegen.MustGenerate(tracegen.ModerateVolatilityConfig(17, 7*24*12)),
	}
	for name, set := range sets {
		for _, day := range []int64{1, 3, 5} {
			at := set.Start() + day*24*trace.Hour
			out[fmt.Sprintf("%s/day%d", name, day)] = set.Slice(at-12*trace.Hour, at)
		}
	}
	return out
}

// TestBatchedMatchesOracleOnPaperTraces is the tentpole's differential
// contract: over every paper trace regime, the batched engine's
// estimates are bit-identical to per-permutation oracle replays — same
// floats, not just close ones.
func TestBatchedMatchesOracleOnPaperTraces(t *testing.T) {
	oracle := &Evaluator{Workers: 1, DisableBatch: true}
	batched := &Evaluator{Workers: 1}
	for name, hist := range paperRegimes() {
		want := oracle.MeasureAll(hist, permutationSpecs(NewPredictorCache()), 300, 300)
		got := batched.MeasureAll(hist, permutationSpecs(NewPredictorCache()), 300, 300)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: batched estimates diverge from the oracle\noracle  %v\nbatched %v", name, want, got)
		}
	}
}

// TestAdaptiveBatchedMatchesOracleEndToEnd runs the full Adaptive
// scheme — decisions, churn damping, live replay — with the batched and
// the oracle evaluator and requires identical results.
func TestAdaptiveBatchedMatchesOracleEndToEnd(t *testing.T) {
	for _, seed := range []uint64{23, 41} {
		hist, run := window(tracegen.HighVolatility(seed), 5, 2)
		cfg := testConfig(hist, run, 300)
		results := make([]*sim.Result, 2)
		for i, disable := range []bool{false, true} {
			a := NewAdaptive()
			a.Eval = &Evaluator{Workers: 4, DisableBatch: disable}
			res, err := sim.Run(cfg, a)
			if err != nil {
				t.Fatalf("seed %d disable=%v: %v", seed, disable, err)
			}
			results[i] = res
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Errorf("seed %d: Adaptive diverges between batched and oracle evaluation:\nbatched %+v\noracle  %+v",
				seed, results[0], results[1])
		}
	}
}

// fuzzPerm is the policy-free description of one fuzzed permutation, so
// the oracle and batched evaluations can each get fresh policy
// instances built from identical parameters.
type fuzzPerm struct {
	bid   float64
	zones []int
	kind  int // 0 Periodic, 1 Markov-Daly, 2 Markov-Daly (Young)
}

func (pp fuzzPerm) spec(cache *PredictorCache) sim.RunSpec {
	var pol sim.CheckpointPolicy
	switch pp.kind {
	case 0:
		pol = NewPeriodic()
	case 1:
		pol = withSharedCache(NewMarkovDaly(), cache)
	default:
		md := NewMarkovDaly()
		md.HigherOrder = false
		pol = withSharedCache(md, cache)
	}
	zones := append([]int(nil), pp.zones...)
	return sim.RunSpec{Bid: pp.bid, Zones: zones, Policy: pol}
}

// FuzzBatchedMeasure drives random traces, bid grids, zone subsets
// (sorted and not, occasionally invalid), overheads and policy mixes
// through the batched engine and the machine oracle, requiring
// bit-identical estimates. scripts/check.sh runs it alongside the other
// fuzz targets.
func FuzzBatchedMeasure(f *testing.F) {
	for i := uint64(0); i < 8; i++ {
		f.Add(i, i*2654435761)
	}
	f.Fuzz(func(t *testing.T, seed, mix uint64) {
		rng := rand.New(rand.NewSource(int64(seed ^ (mix * 0x9e3779b97f4a7c15))))
		nz := 1 + rng.Intn(3)
		n := 1 + rng.Intn(80)
		epoch := int64(rng.Intn(400)) * 300
		series := make([]*trace.Series, nz)
		for z := range series {
			prices := make([]float64, n)
			for i := range prices {
				prices[i] = 0.05 * float64(1+rng.Intn(20))
			}
			series[z] = &trace.Series{Zone: fmt.Sprintf("z%d", z), Epoch: epoch, Step: 300, Prices: prices}
		}
		hist := trace.MustNewSet(series...)
		tc := int64(1+rng.Intn(4)) * 150
		tr := int64(1+rng.Intn(4)) * 150

		perms := make([]fuzzPerm, 1+rng.Intn(8))
		for i := range perms {
			order := rng.Perm(nz)
			zones := order[:1+rng.Intn(nz)]
			if rng.Intn(8) == 0 && len(zones) > 1 {
				zones[0] = zones[1] // duplicate: must fall back, identically
			}
			bid := 0.05 * float64(1+rng.Intn(25))
			if rng.Intn(16) == 0 {
				bid = -bid // invalid: oracle fallback on both paths
			}
			perms[i] = fuzzPerm{bid: bid, zones: zones, kind: rng.Intn(3)}
		}
		shared := rng.Intn(2) == 0

		build := func() []sim.RunSpec {
			var cache *PredictorCache
			if shared {
				cache = NewPredictorCache()
			}
			specs := make([]sim.RunSpec, len(perms))
			for i, pp := range perms {
				specs[i] = pp.spec(cache)
			}
			return specs
		}
		oracle := &Evaluator{Workers: 1, DisableBatch: true}
		batched := &Evaluator{Workers: 1}
		want := oracle.MeasureAll(hist, build(), tc, tr)
		got := batched.MeasureAll(hist, build(), tc, tr)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("batched diverges from oracle (seed=%d mix=%d):\noracle  %v\nbatched %v", seed, mix, want, got)
		}
	})
}

// batchPass runs one full batched sweep on preallocated state, the way
// measureBatch does minus the pool and the span bookkeeping.
func batchPass(t testing.TB, b *batchState, hist *trace.Set, specs []sim.RunSpec, out []estimate) {
	b.reset(hist, 300, 300)
	for i := range specs {
		if !b.addPerm(i, specs[i]) {
			t.Fatal("spec rejected by the batched engine")
		}
	}
	span := float64(hist.Duration())
	for j := range b.perms {
		p := &b.perms[j]
		b.runPerm(p)
		out[p.out] = estimate{
			progressRate: float64(p.maxProgress) / span,
			costRate:     p.cost / span,
		}
	}
}

// TestBatchPassSteadyStateZeroAlloc pins the steady-state allocation
// contract: once the scratch buffers and memo tables have grown to the
// decision point's working set, a full batched sweep allocates nothing.
func TestBatchPassSteadyStateZeroAlloc(t *testing.T) {
	hist := estimationHistory(31)
	specs := permutationSpecs(NewPredictorCache())
	b := &batchState{}
	out := make([]estimate, len(specs))
	// Grow buffers to steady state. Recycled models circulate LIFO
	// through fit sites of different state counts, so their backing
	// arrays take a few passes to all reach their site's high-water
	// capacity; after that a pass allocates nothing at all.
	for i := 0; i < 20; i++ {
		batchPass(t, b, hist, specs, out)
	}
	if n := testing.AllocsPerRun(10, func() { batchPass(t, b, hist, specs, out) }); n != 0 {
		t.Errorf("steady-state batch pass allocates %v times per run, want 0", n)
	}
}

// BenchmarkBidIndexBuild measures the per-(zone, bid) availability index
// build over a 12-hour window.
func BenchmarkBidIndexBuild(b *testing.B) {
	hist := estimationHistory(31)
	cols := trace.NewColumns(hist)
	var bi trace.BidIndex
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bi.Build(cols, i%hist.NumZones(), 0.47)
	}
}

// BenchmarkBatchPass measures one steady-state batched sweep of the
// standard permutation grid over a 12-hour window.
func BenchmarkBatchPass(b *testing.B) {
	hist := estimationHistory(31)
	specs := permutationSpecs(NewPredictorCache())
	st := &batchState{}
	out := make([]estimate, len(specs))
	batchPass(b, st, hist, specs, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batchPass(b, st, hist, specs, out)
	}
}

// BenchmarkMeasureAllBatched and BenchmarkMeasureAllOracle pair the two
// MeasureAll paths over the identical grid, pool and span plumbing
// included.
func BenchmarkMeasureAllBatched(b *testing.B) {
	benchmarkMeasureAll(b, false)
}

// BenchmarkMeasureAllOracle is the oracle side of the pair.
func BenchmarkMeasureAllOracle(b *testing.B) {
	benchmarkMeasureAll(b, true)
}

func benchmarkMeasureAll(b *testing.B, disable bool) {
	hist := estimationHistory(31)
	ev := &Evaluator{DisableBatch: disable}
	specs := permutationSpecs(NewPredictorCache())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.MeasureAll(hist, specs, 300, 300)
	}
}
