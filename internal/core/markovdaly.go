package core

import (
	"math"

	"repro/internal/daly"
	"repro/internal/markov"
	"repro/internal/sim"
)

// MarkovDaly is the §4.2 policy: a Markov chain over discretised spot
// prices (Appendix B) predicts the expected instance uptime E[T_u] at
// the current bid; Daly's equation converts that MTBF and the
// checkpoint cost into the optimal checkpoint interval. For N redundant
// zones with independent prices the combined E[T_u] is the per-zone
// sum, so redundancy lowers the checkpoint frequency.
type MarkovDaly struct {
	// HistorySpan is how much trailing price history feeds the chain;
	// zero selects the paper's 2 days.
	HistorySpan int64
	// Quantum buckets prices before fitting (0.05 by default) to bound
	// the state count on volatile histories; <= 0 disables bucketing.
	Quantum float64
	// HigherOrder selects Daly's higher-order estimate (default) over
	// Young's first-order one; the ablation bench flips this.
	HigherOrder bool

	ts int64 // scheduled checkpoint time T_s
}

// NewMarkovDaly returns the policy with the paper's defaults.
func NewMarkovDaly() *MarkovDaly {
	return &MarkovDaly{HistorySpan: markov.DefaultHistory, Quantum: 0.05, HigherOrder: true}
}

// Name implements sim.CheckpointPolicy.
func (m *MarkovDaly) Name() string { return "markov-daly" }

// Reset implements sim.CheckpointPolicy.
func (m *MarkovDaly) Reset(env *sim.Env) { m.schedule(env) }

// CheckpointCondition reports T = T_s.
func (m *MarkovDaly) CheckpointCondition(env *sim.Env) bool {
	return env.Now >= m.ts
}

// ScheduleNextCheckpoint recomputes E[T_u] and T_s.
func (m *MarkovDaly) ScheduleNextCheckpoint(env *sim.Env) { m.schedule(env) }

func (m *MarkovDaly) schedule(env *sim.Env) {
	interval := m.interval(env)
	if math.IsInf(interval, 1) {
		// The chain predicts no failure at this bid: fall back to one
		// checkpoint per remaining-work horizon (effectively never).
		m.ts = env.Deadline()
		return
	}
	m.ts = env.Now + int64(interval)
}

// interval returns Daly's optimal checkpoint interval in seconds for
// the current configuration.
func (m *MarkovDaly) interval(env *sim.Env) float64 {
	span := m.HistorySpan
	if span <= 0 {
		span = markov.DefaultHistory
	}
	models := make([]*markov.Model, 0, len(env.Spec.Zones))
	prices := make([]float64, 0, len(env.Spec.Zones))
	for _, zi := range env.Spec.Zones {
		hist := markov.Quantize(env.PriceHistory(zi, span), m.Quantum)
		mod, err := markov.Fit(hist, env.Step)
		if err != nil {
			continue
		}
		models = append(models, mod)
		prices = append(prices, env.PriceNow(zi))
	}
	if len(models) == 0 {
		return math.Inf(1)
	}
	mtbf := markov.CombinedExpectedUptime(models, env.Spec.Bid, prices)
	tc := float64(env.CheckpointCost())
	if m.HigherOrder {
		return daly.Optimal(tc, mtbf)
	}
	return daly.Young(tc, mtbf)
}
