package core

import (
	"math"

	"repro/internal/daly"
	"repro/internal/markov"
	"repro/internal/sim"
)

// MarkovDaly is the §4.2 policy: a Markov chain over discretised spot
// prices (Appendix B) predicts the expected instance uptime E[T_u] at
// the current bid; Daly's equation converts that MTBF and the
// checkpoint cost into the optimal checkpoint interval. For N redundant
// zones with independent prices the combined E[T_u] is the per-zone
// sum, so redundancy lowers the checkpoint frequency.
type MarkovDaly struct {
	// HistorySpan is how much trailing price history feeds the chain;
	// zero selects the paper's 2 days.
	HistorySpan int64
	// Quantum buckets prices before fitting (0.05 by default) to bound
	// the state count on volatile histories; <= 0 disables bucketing.
	Quantum float64
	// HigherOrder selects Daly's higher-order estimate (default) over
	// Young's first-order one; the ablation bench flips this.
	HigherOrder bool

	// cache, when set, memoizes fitted chains and computed intervals
	// across the policy instances of one Adaptive decision point (every
	// permutation replays the same history window, so their model
	// inputs coincide). Set by Adaptive via withCache; nil keeps the
	// original fit-per-call behaviour.
	cache *PredictorCache

	// fitter fits chains without markov.Fit's per-call maps; safe as an
	// instance field because policy hooks run on one goroutine. Models
	// handed to the shared cache are fitted without storage recycling
	// (they outlive the call); cache-free fits recycle per-zone scratch
	// models that die with computeInterval.
	fitter  markov.Fitter
	scratch []*markov.Model

	// Last cache-free interval computation, memoized by decision time:
	// the interval is a pure function of the env state at a given Now
	// for a fixed spec, and the engine Resets the policy whenever the
	// spec changes, so a repeated query at the same Now (schedule after
	// a checkpoint commit within one step, say) can reuse the value.
	lastNow  int64
	lastIval float64
	lastOK   bool

	ts int64 // scheduled checkpoint time T_s
}

// withCache attaches a shared predictor cache and returns the policy.
func (m *MarkovDaly) withCache(c *PredictorCache) *MarkovDaly {
	m.cache = c
	return m
}

// NewMarkovDaly returns the policy with the paper's defaults.
func NewMarkovDaly() *MarkovDaly {
	return &MarkovDaly{HistorySpan: markov.DefaultHistory, Quantum: 0.05, HigherOrder: true}
}

// Name implements sim.CheckpointPolicy.
func (m *MarkovDaly) Name() string { return "markov-daly" }

// Reset implements sim.CheckpointPolicy.
func (m *MarkovDaly) Reset(env *sim.Env) {
	m.lastOK = false
	m.schedule(env)
}

// CheckpointCondition reports T = T_s.
func (m *MarkovDaly) CheckpointCondition(env *sim.Env) bool {
	return env.Now >= m.ts
}

// ScheduleNextCheckpoint recomputes E[T_u] and T_s.
func (m *MarkovDaly) ScheduleNextCheckpoint(env *sim.Env) { m.schedule(env) }

func (m *MarkovDaly) schedule(env *sim.Env) {
	interval := m.interval(env)
	if math.IsInf(interval, 1) {
		// The chain predicts no failure at this bid: fall back to one
		// checkpoint per remaining-work horizon (effectively never).
		m.ts = env.Deadline()
		return
	}
	m.ts = env.Now + int64(interval)
}

// interval returns Daly's optimal checkpoint interval in seconds for
// the current configuration. With a predictor cache attached, the
// result — and the fitted chains behind it — are memoized per decision
// time, so sibling permutations of one Adaptive decision point compute
// each model exactly once.
func (m *MarkovDaly) interval(env *sim.Env) float64 {
	if m.cache != nil {
		if packed, ok := packZones(env.Spec.Zones); ok {
			key := intervalKey{
				now:    env.Now,
				bid:    env.Spec.Bid,
				tc:     env.CheckpointCost(),
				higher: m.HigherOrder,
				zones:  packed,
			}
			return m.cache.interval(key, func() float64 { return m.computeInterval(env) })
		}
	}
	if m.lastOK && env.Now == m.lastNow {
		return m.lastIval
	}
	v := m.computeInterval(env)
	m.lastNow, m.lastIval, m.lastOK = env.Now, v, true
	return v
}

// computeInterval fits (or fetches) the per-zone chains and applies
// Daly's estimate to their combined expected uptime.
func (m *MarkovDaly) computeInterval(env *sim.Env) float64 {
	span := m.HistorySpan
	if span <= 0 {
		span = markov.DefaultHistory
	}
	models := make([]*markov.Model, 0, len(env.Spec.Zones))
	prices := make([]float64, 0, len(env.Spec.Zones))
	for pos, zi := range env.Spec.Zones {
		mod := m.fitZone(env, zi, span, pos)
		if mod == nil {
			continue
		}
		models = append(models, mod)
		prices = append(prices, env.PriceNow(zi))
	}
	if len(models) == 0 {
		return math.Inf(1)
	}
	mtbf := markov.CombinedExpectedUptime(models, env.Spec.Bid, prices)
	tc := float64(env.CheckpointCost())
	if m.HigherOrder {
		return daly.Optimal(tc, mtbf)
	}
	return daly.Young(tc, mtbf)
}

// fitZone fits the zone's chain on the trailing span of history,
// through the shared cache when one is attached; nil reports an
// unfittable (empty) history. pos is the zone's position in the spec,
// selecting the scratch model recycled on cache-free fits.
func (m *MarkovDaly) fitZone(env *sim.Env, zi int, span int64, pos int) *markov.Model {
	if m.cache == nil {
		hist := m.quantized(env, zi, span)
		for len(m.scratch) <= pos {
			m.scratch = append(m.scratch, nil)
		}
		mod, err := m.fitter.Fit(hist, env.Step, m.scratch[pos])
		if err != nil {
			return nil
		}
		m.scratch[pos] = mod
		return mod
	}
	fit := func() *markov.Model {
		mod, err := m.fitter.Fit(m.quantized(env, zi, span), env.Step, nil)
		if err != nil {
			return nil
		}
		return mod
	}
	return m.cache.chain(chainKey{zone: zi, now: env.Now, span: span, quantum: m.Quantum}, fit)
}

// quantized samples the zone's trailing history and buckets it in place
// (PriceHistory returns a fresh slice, so no shared storage is touched).
func (m *MarkovDaly) quantized(env *sim.Env, zi int, span int64) []float64 {
	hist := env.PriceHistory(zi, span)
	if m.Quantum > 0 {
		for i, p := range hist {
			hist[i] = math.Round(p/m.Quantum) * m.Quantum
		}
	}
	return hist
}
