package core

import "repro/internal/sim"

// Edge is the Rising Edge policy (§4.3): checkpoint whenever an upward
// movement occurs in the spot price of an executing zone, since a
// rising price signals that S may soon exceed B. ScheduleNextCheckpoint
// is a no-op because the decision is instantaneous.
type Edge struct{}

// NewEdge returns an Edge policy.
func NewEdge() *Edge { return &Edge{} }

// Name implements sim.CheckpointPolicy.
func (*Edge) Name() string { return "edge" }

// Reset implements sim.CheckpointPolicy.
func (*Edge) Reset(env *sim.Env) {}

// CheckpointCondition reports a rising edge in any up zone.
func (*Edge) CheckpointCondition(env *sim.Env) bool {
	for _, z := range env.UpZones() {
		if env.RisingEdge(z.Index) {
			return true
		}
	}
	return false
}

// ScheduleNextCheckpoint implements sim.CheckpointPolicy (no-op).
func (*Edge) ScheduleNextCheckpoint(env *sim.Env) {}
