package core

import (
	"testing"

	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestChangepointIgnoresJitterWhereEdgeFires(t *testing.T) {
	// Price jitters ±$0.01 around $0.30 every step: Edge checkpoints
	// constantly, Changepoint never.
	var prices []float64
	for i := 0; i < 12*10; i++ {
		if i%2 == 0 {
			prices = append(prices, 0.30)
		} else {
			prices = append(prices, 0.31)
		}
	}
	set := trace.MustNewSet(trace.NewSeries("z", 0, prices))
	cfg := sim.Config{
		Trace: set, Work: 4 * trace.Hour, Deadline: 12 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Delay: market.FixedDelay(0), Seed: 1,
	}
	edge, err := sim.Run(cfg, SingleZone(NewEdge(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sim.Run(cfg, SingleZone(NewChangepoint(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}
	if edge.Checkpoints < 10 {
		t.Fatalf("edge checkpoints = %d, expected many on jitter", edge.Checkpoints)
	}
	if cp.Checkpoints != 0 {
		t.Fatalf("changepoint checkpoints = %d on pure jitter", cp.Checkpoints)
	}
	if cp.FinishTime >= edge.FinishTime {
		t.Fatalf("changepoint finish %d not earlier than edge %d (checkpoint overhead)", cp.FinishTime, edge.FinishTime)
	}
}

func TestChangepointDetectsSustainedRise(t *testing.T) {
	// A genuine regime shift below the bid: one checkpoint, not many.
	set := stepTrace([2]float64{0.30, 24}, [2]float64{0.55, 12 * 8})
	res := drive(t, set, NewChangepoint(), 0.81, 4*trace.Hour)
	if res.Checkpoints == 0 {
		t.Fatal("sustained rise not detected")
	}
	if res.Checkpoints > 2 {
		t.Fatalf("checkpoints = %d, want 1-2 for a single shift", res.Checkpoints)
	}
}

func TestChangepointCompletesOnVolatileMarket(t *testing.T) {
	set := tracegen.HighVolatility(27)
	hist, run := window(set, 5, 2)
	cfg := testConfig(hist, run, 300)
	res, err := sim.Run(cfg, SingleZone(NewChangepoint(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !res.DeadlineMet {
		t.Fatalf("changepoint failed: %+v", res)
	}
}

func TestChangepointRedundant(t *testing.T) {
	set := tracegen.HighVolatility(29)
	hist, run := window(set, 5, 2)
	cfg := testConfig(hist, run, 300)
	res, err := sim.Run(cfg, Redundant(NewChangepoint(), 0.81, []int{0, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineMet {
		t.Fatal("redundant changepoint missed deadline")
	}
}
