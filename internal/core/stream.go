package core

import (
	"fmt"
	"math"

	"repro/internal/market"
	"repro/internal/markov"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Streaming evaluation: the ranked plan table maintained as a resident
// structure that price ticks update, instead of a product recomputed
// per request. Rank prices a request by replaying every permutation
// over the whole window — O(window × permutations) even though
// consecutive requests differ by one tick. A StreamEvaluator inverts
// that dataflow: it owns an append-only price tape, keeps every
// permutation's batched replay state (batch.go) live at the window end,
// and on each tick extends the columnar views, availability indexes and
// fit memos in place, steps every resident permutation by exactly one
// interval, and re-scores the table from non-destructive meter closes —
// O(permutations) work per tick, O(delta) in the window.
//
// The contract is bit-identicality, not approximation: after any
// number of ticks the table equals what Evaluator.Rank would return
// for the same window, float for float. That holds because the batched
// engine's per-step state machine is the oracle's (stepPerm mirrors
// Machine.Step stage by stage), its event-skipped replay commits
// charges in the oracle's exact order, every memo entry is a pure
// function of a window prefix (append-stable), and the estimation
// close is replayed on local copies so reading the table never
// perturbs the resident state. A periodic full-rebuild cross-check
// (CrossCheckEvery) re-derives the table through Rank and counts — and
// corrects — any divergence, turning the invariant into a runtime
// check rather than a test-only one.
//
// Ordering churn is the one structural event: the grid's zone sets
// follow the cheapest-last-price ordering, so a tick that reorders
// zones introduces permutations never replayed before. Those catch up
// with one event-skipped replay over the accumulated window (the
// indexes and memos already cover it); permutations that fall out of
// the grid stay resident and keep stepping — cheap, and they resume
// for free when the ordering flips back — until the resident set
// outgrows the grid by residentSlack and a rebuild prunes it.
//
// A StreamEvaluator is single-goroutine by design: the tick pipeline
// owns it, and everything downstream reads published snapshots.

// Streaming evaluator defaults: the cross-check cadence and the
// retention bound (in steps) before the tape is compacted to half.
const (
	DefaultCrossCheckEvery = 256
	DefaultStreamRetention = 8192
)

// residentSlack is how far the resident permutation set may outgrow
// the live grid (orderings come and go with price moves) before a
// rebuild prunes the stale ones.
const residentSlack = 4

// StreamConfig describes one streaming planning question: the fixed
// request shape (everything a PlanRequest carries except the history)
// plus the feed geometry the tape accretes ticks on.
type StreamConfig struct {
	// Zones names the feed's availability zones, in column order.
	Zones []string
	// Start is the absolute time of the first tick's sample.
	Start int64
	// Step is the tick interval in seconds; 0 selects trace.DefaultStep.
	Step int64

	// Work and Deadline are the remaining computation C_r and
	// wall-clock budget T_r in seconds, as in PlanRequest.
	Work     int64
	Deadline int64
	// CheckpointCost and RestartCost are t_c and t_r in seconds.
	CheckpointCost int64
	RestartCost    int64
	// OnDemandRate prices the on-demand fallback; 0 selects
	// market.OnDemandRate.
	OnDemandRate float64
	// Bids is the candidate bid grid; nil selects BidGrid().
	Bids []float64
	// MaxZones bounds the redundancy degree N; 0 selects 3 (clamped to
	// the configured zones).
	MaxZones int
	// Candidates are the policy families; nil selects
	// DefaultAdaptiveCandidates().
	Candidates []PolicyFactory

	// CrossCheckEvery is the tick cadence of the full-rebuild
	// cross-check; 0 selects DefaultCrossCheckEvery, negative disables
	// it.
	CrossCheckEvery int
	// MaxSteps bounds the retained window; past it the tape compacts to
	// its trailing half and the resident state rebuilds over the
	// shortened window. 0 selects DefaultStreamRetention.
	MaxSteps int
}

// StreamUpdate is the outcome of one tick: the (possibly unchanged)
// ranked table under its monotonic generation number, plus the diff
// against the previous generation for push consumers. Plans aliases the
// evaluator's current table and must be treated as read-only.
type StreamUpdate struct {
	// Generation is the monotonic plan-table generation; it increments
	// exactly when the table changes.
	Generation uint64
	// Tick counts ingested ticks, 1-based.
	Tick uint64
	// Steps is the retained window length in samples.
	Steps int
	// At is the absolute time of this tick's sample.
	At int64
	// Changed reports whether this tick produced a new generation.
	Changed bool
	// BestChanged reports whether rank 0 changed this tick.
	BestChanged bool
	// ChangedRanks counts table positions whose plan changed.
	ChangedRanks int
	// Plans is the current ranked table (read-only alias).
	Plans []Plan
}

// StreamStats counts the evaluator's structural events, for metrics
// and the cross-check's divergence accounting.
type StreamStats struct {
	// Ticks counts ingested ticks.
	Ticks uint64
	// Rebuilds counts full resident-state rebuilds (first tick,
	// compactions, prunes, cross-check corrections).
	Rebuilds int64
	// Compactions counts retention-bound tape compactions.
	Compactions int64
	// CatchUps counts permutations that entered the grid mid-stream and
	// replayed over the accumulated window.
	CatchUps int64
	// CrossChecks counts full-rebuild cross-checks run.
	CrossChecks int64
	// CrossCheckMismatches counts cross-checks whose from-scratch table
	// differed from the incremental one (the reference table is adopted
	// and the resident state rebuilt).
	CrossCheckMismatches int64
	// Resident is the current resident permutation count.
	Resident int
	// Fallback reports the evaluator degraded permanently to
	// per-tick full ranking (a candidate the batched engine cannot
	// replay incrementally).
	Fallback bool
}

// permKey identifies one resident permutation: the policy family, the
// bid and the packed zone set.
type permKey struct {
	kind  string
	bid   float64
	zones uint64
}

// StreamEvaluator maintains the ranked plan table of one request shape
// incrementally over a live price feed. Not safe for concurrent use;
// the tick pipeline owns it.
type StreamEvaluator struct {
	ev  *Evaluator
	cfg StreamConfig

	// Resolved request knobs, fixed for the evaluator's lifetime so the
	// grid and the cross-check resolve identically.
	odRate   float64
	bids     []float64
	maxZones int
	cands    []PolicyFactory

	tape     *trace.Tape
	b        *batchState
	resident map[permKey]int
	dirty    bool // resident state must rebuild before the next use
	fallback bool

	gen   uint64
	plans []Plan
	stats StreamStats
}

// NewStreamEvaluator builds a streaming evaluator for the request
// shape. ev supplies the tracer and the cross-check ranking; nil gets a
// fresh default Evaluator.
func NewStreamEvaluator(ev *Evaluator, cfg StreamConfig) (*StreamEvaluator, error) {
	if ev == nil {
		ev = NewEvaluator()
	}
	if cfg.Step == 0 {
		cfg.Step = trace.DefaultStep
	}
	if cfg.CrossCheckEvery == 0 {
		cfg.CrossCheckEvery = DefaultCrossCheckEvery
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultStreamRetention
	}
	if cfg.MaxSteps < 16 {
		return nil, fmt.Errorf("core: stream retention %d below the 16-step minimum", cfg.MaxSteps)
	}
	if cfg.Work <= 0 {
		return nil, fmt.Errorf("core: non-positive remaining work %d", cfg.Work)
	}
	if cfg.Deadline < cfg.Work {
		return nil, fmt.Errorf("core: deadline %d cannot be met: below remaining work %d", cfg.Deadline, cfg.Work)
	}
	if cfg.OnDemandRate < 0 {
		return nil, fmt.Errorf("core: negative on-demand rate %g", cfg.OnDemandRate)
	}
	tape, err := trace.NewTape(cfg.Zones, cfg.Start, cfg.Step)
	if err != nil {
		return nil, err
	}
	se := &StreamEvaluator{
		ev:       ev,
		cfg:      cfg,
		odRate:   cfg.OnDemandRate,
		bids:     cfg.Bids,
		maxZones: cfg.MaxZones,
		cands:    cfg.Candidates,
		tape:     tape,
		resident: make(map[permKey]int),
	}
	if se.odRate == 0 {
		se.odRate = market.OnDemandRate
	}
	if se.bids == nil {
		se.bids = BidGrid()
	}
	if se.maxZones <= 0 {
		se.maxZones = 3
	}
	if se.maxZones > len(cfg.Zones) {
		se.maxZones = len(cfg.Zones)
	}
	if se.cands == nil {
		se.cands = DefaultAdaptiveCandidates()
	}
	// Two Markov-Daly candidates with different (span, quantum)
	// profiles collide in the shared predictor cache's interval key on
	// Rank's oracle fallback (see batch.go's package comment); the
	// incremental path has no shared cache and would legitimately
	// diverge. Degrade that configuration to per-tick full ranking so
	// streaming answers stay byte-equal to Rank's.
	var prof cacheProfile
	seen := false
	for _, fac := range se.cands {
		md, ok := fac.New().(*MarkovDaly)
		if !ok {
			continue
		}
		span := md.HistorySpan
		if span <= 0 {
			span = markov.DefaultHistory
		}
		p := cacheProfile{span: span, quantum: md.Quantum}
		if seen && p != prof {
			se.fallback = true
			break
		}
		prof, seen = p, true
	}
	return se, nil
}

// Generation returns the current plan-table generation (0 before the
// first tick).
func (se *StreamEvaluator) Generation() uint64 { return se.gen }

// Plans returns the current ranked table (read-only alias; nil before
// the first tick).
func (se *StreamEvaluator) Plans() []Plan { return se.plans }

// Steps returns the retained window length in samples.
func (se *StreamEvaluator) Steps() int { return se.tape.Len() }

// Stats returns a snapshot of the structural-event counters.
func (se *StreamEvaluator) Stats() StreamStats {
	st := se.stats
	if se.b != nil {
		st.Resident = len(se.b.perms)
	}
	st.Fallback = se.fallback
	return st
}

// request assembles the PlanRequest the current window answers —
// exactly what a cross-check or fallback Rank receives.
func (se *StreamEvaluator) request(hist *trace.Set) PlanRequest {
	return PlanRequest{
		History:        hist,
		Work:           se.cfg.Work,
		Deadline:       se.cfg.Deadline,
		CheckpointCost: se.cfg.CheckpointCost,
		RestartCost:    se.cfg.RestartCost,
		OnDemandRate:   se.odRate,
		Bids:           se.bids,
		MaxZones:       se.maxZones,
		Candidates:     se.cands,
	}
}

// Advance ingests one price tick (one sample per zone, column order)
// and returns the tick's update. Work per tick is O(zones × bids) for
// the index extension plus O(resident permutations) for the stepping
// and re-scoring — independent of the window length outside catch-ups,
// compactions and cross-checks.
func (se *StreamEvaluator) Advance(prices []float64) (StreamUpdate, error) {
	asp := se.ev.Trace.Start("stream.advance")
	defer asp.End()
	if err := se.tape.Append(prices); err != nil {
		return StreamUpdate{}, err
	}
	se.stats.Ticks++
	if se.tape.Len() > se.cfg.MaxSteps {
		se.tape = se.tape.Tail(se.cfg.MaxSteps / 2)
		se.dirty = true
		se.stats.Compactions++
	}
	hist := se.tape.Set()
	req := se.request(hist)

	var plans []Plan
	if !se.fallback {
		plans = se.advanceIncremental(hist, &req)
	}
	if se.fallback { // entered either before the tick or during it
		var err error
		plans, err = se.ev.Rank(req)
		if err != nil {
			return StreamUpdate{}, err
		}
	}

	if !se.fallback && se.cfg.CrossCheckEvery > 0 && se.stats.Ticks%uint64(se.cfg.CrossCheckEvery) == 0 {
		plans = se.crossCheck(req, plans)
	}
	return se.publish(plans), nil
}

// advanceIncremental runs the per-tick delta update and re-score,
// returning the new table; a grid cell the batched engine cannot keep
// resident flips the evaluator to permanent fallback and returns nil.
func (se *StreamEvaluator) advanceIncremental(hist *trace.Set, req *PlanRequest) []Plan {
	usp := se.ev.Trace.Start("stream.update")
	if se.b == nil || se.dirty {
		se.rebuildState(hist)
	} else {
		se.extendState(hist)
	}
	usp.End()

	rsp := se.ev.Trace.Start("stream.rerank")
	defer rsp.End()
	slots := rankSlots(hist, se.bids, se.maxZones, se.cands)
	if len(se.b.perms) > residentSlack*len(slots) {
		se.rebuildState(hist) // prune permutations no current ordering needs
	}
	if !se.ensureResident(slots) {
		se.fallback = true
		return nil
	}
	span := float64(hist.Duration())
	ests := make([]estimate, len(slots))
	for i := range slots {
		pi := se.resident[slotPermKey(&slots[i])]
		ests[i] = se.b.closeEstimate(&se.b.perms[pi], span)
	}
	return scorePlans(req, se.odRate, slots, ests)
}

// rebuildState re-arms the batched scratch over the current window and
// drops the resident permutation set; the next ensureResident replays
// the live grid from scratch.
func (se *StreamEvaluator) rebuildState(hist *trace.Set) {
	if se.b == nil {
		se.b = &batchState{}
	}
	se.b.reset(hist, se.cfg.CheckpointCost, se.cfg.RestartCost)
	clear(se.resident)
	se.dirty = false
	se.stats.Rebuilds++
}

// extendState grows every resident structure over the tick's new
// trailing steps — columns, availability indexes, chain-fit memos and
// the prefix fitters — then steps each resident permutation through
// them, exactly as the oracle's per-step loop would have.
func (se *StreamEvaluator) extendState(hist *trace.Set) {
	b := se.b
	old := b.nsteps
	b.cols.Reset(hist)
	b.avail.Extend()
	b.nsteps = b.cols.Steps()
	b.end = b.cols.End()
	for ci, cm := range b.chains {
		key := b.chainKeys[ci]
		for len(cm.models) < b.nsteps {
			cm.models = append(cm.models, nil)
			cm.done = append(cm.done, false)
		}
		if cm.ustride > 0 {
			cm.usolve.grow(b.nsteps * cm.ustride)
		}
		if cm.pfReady {
			src := b.cols.Col(key.zone)
			if key.quantum > 0 {
				for _, p := range src[len(cm.qbuf):] {
					cm.qbuf = append(cm.qbuf, math.Round(p/key.quantum)*key.quantum)
				}
				src = cm.qbuf
			}
			cm.pf.Extend(src)
		}
	}
	for pi := range b.perms {
		p := &b.perms[pi]
		if p.ivals != nil {
			p.ivals.grow(b.nsteps)
		}
		zs := b.zoneBuf[p.zoff : p.zoff+p.nz]
		for k := range zs {
			// The tape's append may have reallocated the column.
			zs[k].col = b.cols.Col(zs[k].zone)
		}
		bill := b.billBuf[p.boff : p.boff+p.nz]
		for i := old; i < b.nsteps; i++ {
			b.stepPerm(p, zs, bill, b.start+int64(i)*b.step, i)
		}
	}
}

// ensureResident adds and catches up every grid cell that has no
// resident permutation yet, reporting false when a cell cannot take the
// incremental path (unsupported policy family, unpackable zone set).
func (se *StreamEvaluator) ensureResident(slots []rankSlot) bool {
	for i := range slots {
		sl := &slots[i]
		zk, ok := packZones(sl.zones)
		if !ok {
			return false
		}
		key := permKey{kind: sl.kind, bid: sl.bid, zones: zk}
		if _, have := se.resident[key]; have {
			continue
		}
		spec := sim.RunSpec{Bid: sl.bid, Zones: sl.zones, Policy: se.cands[sl.fac].New()}
		pi := len(se.b.perms)
		if !se.b.addPerm(pi, spec) {
			return false
		}
		se.b.replayPerm(&se.b.perms[pi])
		se.resident[key] = pi
		se.stats.CatchUps++
	}
	return true
}

// slotPermKey is ensureResident's key for a slot already known to pack.
func slotPermKey(sl *rankSlot) permKey {
	zk, _ := packZones(sl.zones)
	return permKey{kind: sl.kind, bid: sl.bid, zones: zk}
}

// crossCheck re-derives the table from scratch through Rank and
// reconciles: on a mismatch the reference table wins and the resident
// state is marked for rebuild, so one bad delta cannot compound.
func (se *StreamEvaluator) crossCheck(req PlanRequest, plans []Plan) []Plan {
	csp := se.ev.Trace.Start("stream.crosscheck")
	defer csp.End()
	se.stats.CrossChecks++
	ref, err := se.ev.Rank(req)
	if err != nil || !plansEqual(plans, ref) {
		se.stats.CrossCheckMismatches++
		se.dirty = true
		if ref != nil {
			return ref
		}
	}
	return plans
}

// publish diffs the tick's table against the published one, advancing
// the generation only when something changed.
func (se *StreamEvaluator) publish(plans []Plan) StreamUpdate {
	upd := StreamUpdate{
		Tick:  se.stats.Ticks,
		Steps: se.tape.Len(),
		At:    se.tape.End() - se.cfg.Step,
	}
	if se.gen == 0 || !plansEqual(plans, se.plans) {
		upd.Changed = true
		upd.BestChanged = len(se.plans) == 0 || len(plans) == 0 || !planEqual(&plans[0], &se.plans[0])
		upd.ChangedRanks = changedRanks(plans, se.plans)
		se.gen++
		se.plans = plans
	}
	upd.Generation = se.gen
	upd.Plans = se.plans
	return upd
}

// f64eq compares floats by bit pattern — the streaming contract is
// bit-identicality, so NaNs compare equal to themselves and nothing
// else collapses.
func f64eq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// planEqual reports whether two plans are bitwise-identical.
func planEqual(a, b *Plan) bool {
	if !f64eq(a.Bid, b.Bid) || a.Policy != b.Policy ||
		!f64eq(a.PredictedCost, b.PredictedCost) ||
		!f64eq(a.ProgressRate, b.ProgressRate) ||
		!f64eq(a.CostRate, b.CostRate) ||
		a.PredictedFinish != b.PredictedFinish ||
		a.DeadlineMargin != b.DeadlineMargin ||
		len(a.Zones) != len(b.Zones) {
		return false
	}
	for i := range a.Zones {
		if a.Zones[i] != b.Zones[i] {
			return false
		}
	}
	return true
}

// plansEqual reports whether two tables are bitwise-identical.
func plansEqual(a, b []Plan) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !planEqual(&a[i], &b[i]) {
			return false
		}
	}
	return true
}

// changedRanks counts table positions whose plan differs.
func changedRanks(a, b []Plan) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	c := 0
	for i := 0; i < n; i++ {
		if i >= len(a) || i >= len(b) || !planEqual(&a[i], &b[i]) {
			c++
		}
	}
	return c
}
