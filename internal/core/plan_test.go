package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// planRequest builds a small, fast planning request over the shared
// estimation history.
func planRequest(hist *trace.Set) PlanRequest {
	return PlanRequest{
		History:        hist,
		Work:           8 * trace.Hour,
		Deadline:       12 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		MaxZones:       2,
		Bids:           []float64{0.47, 0.81, 1.67},
	}
}

// TestRankValidation exercises every request rejection.
func TestRankValidation(t *testing.T) {
	hist := estimationHistory(17)
	ev := NewEvaluator()
	cases := []struct {
		name string
		mut  func(*PlanRequest)
	}{
		{"nil history", func(r *PlanRequest) { r.History = nil }},
		{"zero work", func(r *PlanRequest) { r.Work = 0 }},
		{"negative work", func(r *PlanRequest) { r.Work = -1 }},
		{"deadline below work", func(r *PlanRequest) { r.Deadline = r.Work - 1 }},
		{"negative on-demand rate", func(r *PlanRequest) { r.OnDemandRate = -2.4 }},
	}
	for _, tc := range cases {
		req := planRequest(hist)
		tc.mut(&req)
		if _, err := ev.Rank(req); err == nil {
			t.Errorf("%s: Rank accepted an invalid request", tc.name)
		}
	}
}

// TestRankShape checks the grid size, the best-first ordering and the
// plan fields' internal consistency.
func TestRankShape(t *testing.T) {
	hist := estimationHistory(17)
	ev := NewEvaluator()
	req := planRequest(hist)
	plans, err := ev.Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	// policies × zone degrees × bids
	if want := 2 * 2 * 3; len(plans) != want {
		t.Fatalf("got %d plans, want %d", len(plans), want)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].PredictedCost < plans[i-1].PredictedCost {
			t.Fatalf("plans not sorted by cost: plan %d (%.4f) < plan %d (%.4f)",
				i, plans[i].PredictedCost, i-1, plans[i-1].PredictedCost)
		}
	}
	for i, p := range plans {
		if len(p.Zones) == 0 || len(p.Zones) > 2 {
			t.Errorf("plan %d: bad zone count %d", i, len(p.Zones))
		}
		if p.Policy != "periodic" && p.Policy != "markov-daly" {
			t.Errorf("plan %d: unknown policy %q", i, p.Policy)
		}
		if p.PredictedCost < 0 || math.IsNaN(p.PredictedCost) {
			t.Errorf("plan %d: bad predicted cost %v", i, p.PredictedCost)
		}
		if p.DeadlineMargin != req.Deadline-p.PredictedFinish {
			t.Errorf("plan %d: margin %d inconsistent with finish %d", i, p.DeadlineMargin, p.PredictedFinish)
		}
	}
	var progressed bool
	for _, p := range plans {
		if p.ProgressRate > 0 {
			progressed = true
		}
	}
	if !progressed {
		t.Fatal("no plan measured any progress; scenario too tame")
	}
}

// TestRankDeterministic is the planning service's reproducibility
// contract: identical requests yield deeply equal plan tables at any
// worker count.
func TestRankDeterministic(t *testing.T) {
	hist := estimationHistory(17)
	var want []Plan
	for _, workers := range []int{1, 0, 2, 8} {
		ev := &Evaluator{Workers: workers}
		got, err := ev.Rank(planRequest(hist))
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: plans diverge from serial run", workers)
		}
	}
}

// TestRankOnDemandRateScalesFallback checks that the request's
// on-demand rate flows into predictions: with a progress-free history
// (prices always above every bid), every plan's predicted cost is the
// pure on-demand cost at the requested rate.
func TestRankOnDemandRateScalesFallback(t *testing.T) {
	// Flat $9 prices: all bids in the grid below are outbid forever.
	n := int(12 * trace.Hour / trace.DefaultStep)
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = 9.0
	}
	hist := trace.MustNewSet(
		&trace.Series{Zone: "a", Epoch: 0, Step: trace.DefaultStep, Prices: append([]float64(nil), prices...)},
		&trace.Series{Zone: "b", Epoch: 0, Step: trace.DefaultStep, Prices: append([]float64(nil), prices...)},
	)
	ev := NewEvaluator()
	for _, rate := range []float64{2.40, 5.00} {
		req := planRequest(hist)
		req.OnDemandRate = rate
		plans, err := ev.Rank(req)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Ceil(float64(req.Work)/float64(trace.Hour)) * rate
		for i, p := range plans {
			if p.ProgressRate != 0 {
				t.Fatalf("plan %d progressed despite unreachable bids", i)
			}
			if p.PredictedCost != want {
				t.Errorf("rate %.2f: plan %d predicted %.2f, want pure on-demand %.2f", rate, i, p.PredictedCost, want)
			}
		}
	}
}
