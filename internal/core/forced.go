package core

import "repro/internal/sim"

// ScriptChoice pins one recorded decision for replay: the absolute
// simulation time the decision fired (replay matches decisions to
// Reconsider calls by time, so gated non-decisions stay gated), whether
// the original decision switched the running spec, and the chosen
// permutation's values. It is the minimal, policy-instance-free form of
// a DecisionPoint's outcome.
type ScriptChoice struct {
	// Time is the absolute simulation time of the decision.
	Time int64
	// Switched reports whether the decision changed the running spec.
	Switched bool
	// Bid, Zones and Policy are the chosen permutation's values; Policy
	// names the policy family, never an instance.
	Bid    float64
	Zones  []int
	Policy string
}

// Forced is the counterfactual replay strategy behind internal/decision:
// it replays a recorded decision script exactly — no permutation sweeps,
// no evaluator — up to ForceAt, substitutes the forced alternative
// there, and hands the run over to the Inner Adaptive strategy to make
// every later decision live. Three modes fall out of the fields:
//
//   - Pinned oracle (Script set, ForceAt < 0, Inner optional): every
//     decision replays from the script; a from-scratch run of the same
//     config is bit-identical to the run that produced the script.
//   - Scripted counterfactual (Script set, ForceAt ≥ 0, Inner set): the
//     cheap path the replayer uses — prefix pinned, one decision forced,
//     live Adaptive (batched evaluator) afterwards.
//   - Live counterfactual (Script nil, ForceAt ≥ 0, Inner set): the
//     naive baseline — the Inner strategy re-runs every prefix sweep
//     from scratch and the force is applied at decision ForceAt.
//
// A forced alternative switches the running spec iff its values differ
// from the incumbent's (bid, zone set, policy family); forcing the
// originally-chosen permutation therefore reproduces the original run
// decision-for-decision, which is what the zero-regret property tests
// pin down.
type Forced struct {
	// Inner makes every decision after the scripted/forced prefix.
	// Required unless ForceAt < 0 (pure pinned replay).
	Inner *Adaptive
	// Candidates maps policy family names to fresh instances when the
	// script installs a policy; nil falls back to Inner's candidates,
	// then to DefaultAdaptiveCandidates.
	Candidates []PolicyFactory
	// Script holds the recorded decisions to pin, in sequence order.
	Script []ScriptChoice
	// ForceAt is the decision sequence number to substitute; negative
	// pins the whole script with no substitution.
	ForceAt int
	// Force is the alternative substituted at ForceAt (Bid, Zones,
	// Policy; Time and Switched are ignored).
	Force ScriptChoice
	// Sink, when non-nil, receives the pinned and forced decisions
	// (Ranked empty — pinned decisions score nothing). Decisions made
	// live by Inner go to Inner.Sink.
	Sink DecisionSink

	seq  int // next decision sequence number
	idx  int // next script entry
	live bool
	cur  sim.RunSpec // spec the engine is running (last installed)
}

// Name implements sim.Strategy.
func (f *Forced) Name() string { return "forced" }

// Begin implements sim.Strategy: decision 0 comes from the script, the
// force, or the Inner strategy, depending on mode.
func (f *Forced) Begin(env *sim.Env) sim.RunSpec {
	f.seq, f.idx, f.live = 0, 0, false
	f.cur = sim.RunSpec{}
	if len(f.Script) == 0 {
		f.Script = nil
	}
	if f.Script != nil {
		alt := f.Script[0]
		if f.ForceAt == 0 {
			alt = f.Force
		}
		spec := f.build(alt)
		f.cur = spec
		f.seq, f.idx = 1, 1
		f.record(env, TriggerBegin, true, alt, 0)
		if f.ForceAt == 0 {
			f.goLive(spec)
		}
		return spec
	}
	// Live mode: no script to pin.
	if f.ForceAt == 0 {
		spec := f.build(f.Force)
		f.cur = spec
		f.seq = 1
		f.record(env, TriggerBegin, true, f.Force, 0)
		f.goLive(spec)
		return spec
	}
	spec := f.inner().Begin(env)
	f.cur = spec
	f.seq = 1
	return spec
}

// Reconsider implements sim.Strategy.
func (f *Forced) Reconsider(env *sim.Env, events []sim.Event) (sim.RunSpec, bool) {
	if f.live {
		return f.inner().Reconsider(env, events)
	}
	if f.Script != nil {
		return f.reconsiderScripted(env, events)
	}
	return f.reconsiderLivePrefix(env, events)
}

// reconsiderScripted replays the pinned prefix: Reconsider calls whose
// time does not match the next script entry were gated non-decisions in
// the original run and stay gated; matching calls consume the entry.
func (f *Forced) reconsiderScripted(env *sim.Env, events []sim.Event) (sim.RunSpec, bool) {
	if f.idx >= len(f.Script) {
		if f.Inner == nil {
			// Pure pinned replay past its script: the original run made
			// no further decisions, so neither does the replay.
			return sim.RunSpec{}, false
		}
		f.goLive(f.cur)
		return f.Inner.Reconsider(env, events)
	}
	if f.Script[f.idx].Time != env.Now {
		return sim.RunSpec{}, false
	}
	choice := f.Script[f.idx]
	f.idx++
	seq := f.seq
	f.seq++
	trigger := triggerFor(events)
	if seq == f.ForceAt {
		return f.applyForce(env, trigger, &choice, seq)
	}
	if !choice.Switched {
		f.record(env, trigger, false, choice, seq)
		return sim.RunSpec{}, false
	}
	spec := f.build(choice)
	f.cur = spec
	f.record(env, trigger, true, choice, seq)
	return spec, true
}

// reconsiderLivePrefix counts the Inner strategy's own decisions until
// ForceAt, replicating its hour-boundary gating so the sequence numbers
// line up with a recorded run's.
func (f *Forced) reconsiderLivePrefix(env *sim.Env, events []sim.Event) (sim.RunSpec, bool) {
	in := f.inner()
	if in.ReDecideOnHourOnly && !hasHourBoundary(events) {
		return in.Reconsider(env, events) // gated: not a decision point
	}
	seq := f.seq
	f.seq++
	if seq == f.ForceAt {
		return f.applyForce(env, triggerFor(events), nil, seq)
	}
	spec, ok := in.Reconsider(env, events)
	if ok {
		f.cur = spec
	}
	return spec, ok
}

// applyForce substitutes the forced alternative at its decision point
// and hands the run to Inner. The force switches the running spec iff
// its values differ from the incumbent's; when the force equals the
// originally-recorded choice the original Switched flag is replayed
// verbatim, so forcing the chosen permutation is exactly the original
// run.
func (f *Forced) applyForce(env *sim.Env, trigger string, choice *ScriptChoice, seq int) (sim.RunSpec, bool) {
	switched := !altMatchesSpec(f.Force, f.cur)
	if choice != nil && altEqual(f.Force, *choice) {
		switched = choice.Switched
	}
	if !switched {
		f.record(env, trigger, false, f.Force, seq)
		f.goLive(f.cur)
		return sim.RunSpec{}, false
	}
	spec := f.build(f.Force)
	f.cur = spec
	f.record(env, trigger, true, f.Force, seq)
	f.goLive(spec)
	return spec, true
}

// goLive hands every later decision to the Inner Adaptive strategy,
// seeding it with the running spec and the next sequence number so its
// churn damping and decision records continue seamlessly.
func (f *Forced) goLive(spec sim.RunSpec) {
	if f.Inner == nil {
		panic("core: Forced needs Inner to decide past the script")
	}
	f.live = true
	f.Inner.chosen = spec
	f.Inner.decSeq = f.seq
}

// inner returns the continuation strategy, panicking with a clear
// message when a mode that needs one lacks it.
func (f *Forced) inner() *Adaptive {
	if f.Inner == nil {
		panic("core: Forced needs Inner in live mode")
	}
	return f.Inner
}

// record hands a pinned or forced decision to the sink.
func (f *Forced) record(env *sim.Env, trigger string, switched bool, alt ScriptChoice, seq int) {
	if f.Sink == nil {
		return
	}
	f.Sink.RecordDecision(DecisionPoint{
		Seq:      seq,
		Time:     env.Now,
		Trigger:  trigger,
		Switched: switched,
		Chosen:   DecisionAlt{Bid: alt.Bid, Zones: alt.Zones, Policy: alt.Policy},
	})
}

// build materializes a script choice as a runnable spec with a fresh
// policy instance of the named family.
func (f *Forced) build(alt ScriptChoice) sim.RunSpec {
	return sim.RunSpec{
		Bid:    alt.Bid,
		Zones:  append([]int(nil), alt.Zones...),
		Policy: f.policyFor(alt.Policy),
	}
}

// policyFor builds a fresh policy instance for a family name, searching
// the candidate factories first and falling back to the known built-in
// families (Periodic for unknown names).
func (f *Forced) policyFor(kind string) sim.CheckpointPolicy {
	cands := f.Candidates
	if cands == nil && f.Inner != nil {
		cands = f.Inner.candidates()
	}
	if cands == nil {
		cands = DefaultAdaptiveCandidates()
	}
	for _, fac := range cands {
		if fac.Kind == kind {
			return fac.New()
		}
	}
	switch kind {
	case "markov-daly":
		return NewMarkovDaly()
	case "edge":
		return NewEdge()
	case "threshold":
		return NewThreshold()
	}
	return NewPeriodic()
}

// altMatchesSpec reports whether a script choice requests the same
// observable configuration the spec is running: bid, zone set and
// policy family name.
func altMatchesSpec(alt ScriptChoice, spec sim.RunSpec) bool {
	if spec.Bid != alt.Bid || len(spec.Zones) != len(alt.Zones) {
		return false
	}
	for i := range spec.Zones {
		if spec.Zones[i] != alt.Zones[i] {
			return false
		}
	}
	var name string
	if spec.Policy != nil {
		name = spec.Policy.Name()
	}
	return name == alt.Policy
}

// altEqual reports whether two script choices request the same
// permutation values.
func altEqual(a, b ScriptChoice) bool {
	if a.Bid != b.Bid || a.Policy != b.Policy || len(a.Zones) != len(b.Zones) {
		return false
	}
	for i := range a.Zones {
		if a.Zones[i] != b.Zones[i] {
			return false
		}
	}
	return true
}

// hasHourBoundary reports whether the events include an hour boundary.
func hasHourBoundary(events []sim.Event) bool {
	for _, ev := range events {
		if ev.Kind == sim.HourBoundary {
			return true
		}
	}
	return false
}
