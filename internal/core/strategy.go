package core

import (
	"fmt"

	"repro/internal/sim"
)

// Static is a strategy that never changes its configuration: one bid,
// one zone set, one policy, as in the paper's §4 evaluation.
type Static struct {
	Label string
	Spec  sim.RunSpec
}

// NewStatic wraps a spec in a static strategy.
func NewStatic(label string, spec sim.RunSpec) *Static {
	return &Static{Label: label, Spec: spec}
}

// SingleZone builds a static single-zone strategy.
func SingleZone(policy sim.CheckpointPolicy, bid float64, zone int) *Static {
	return &Static{
		Label: fmt.Sprintf("%s/z%d", policy.Name(), zone),
		Spec:  sim.RunSpec{Bid: bid, Zones: []int{zone}, Policy: policy},
	}
}

// Redundant builds a static strategy over several zones (the paper's
// redundancy-based variant of a policy).
func Redundant(policy sim.CheckpointPolicy, bid float64, zones []int) *Static {
	return &Static{
		Label: fmt.Sprintf("redundant-%s/n%d", policy.Name(), len(zones)),
		Spec:  sim.RunSpec{Bid: bid, Zones: zones, Policy: policy},
	}
}

// Name implements sim.Strategy.
func (s *Static) Name() string { return s.Label }

// Begin implements sim.Strategy.
func (s *Static) Begin(env *sim.Env) sim.RunSpec { return s.Spec }

// Reconsider implements sim.Strategy: a static strategy never switches.
func (s *Static) Reconsider(env *sim.Env, events []sim.Event) (sim.RunSpec, bool) {
	return sim.RunSpec{}, false
}

// OnDemandOnly runs the job purely on the on-demand market: the
// fixed-cost baseline every figure references as the $48 grey line
// (20 h × $2.40/h).
type OnDemandOnly struct{}

// NewOnDemandOnly returns the on-demand baseline strategy.
func NewOnDemandOnly() *OnDemandOnly { return &OnDemandOnly{} }

// Name implements sim.Strategy.
func (*OnDemandOnly) Name() string { return "on-demand" }

// Begin implements sim.Strategy: an empty zone set makes the engine run
// the whole job on-demand immediately.
func (*OnDemandOnly) Begin(env *sim.Env) sim.RunSpec { return sim.RunSpec{} }

// Reconsider implements sim.Strategy.
func (*OnDemandOnly) Reconsider(env *sim.Env, events []sim.Event) (sim.RunSpec, bool) {
	return sim.RunSpec{}, false
}
