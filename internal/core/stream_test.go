package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// prefixSet returns the first n samples of the set as a standalone
// aligned window — the from-scratch reference for what a streaming
// evaluator has seen after n ticks.
func prefixSet(set *trace.Set, n int) *trace.Set {
	series := make([]*trace.Series, set.NumZones())
	for z := range series {
		s := set.Series[z]
		series[z] = &trace.Series{Zone: s.Zone, Epoch: set.Start(), Step: set.Step(), Prices: s.Prices[:n]}
	}
	return &trace.Set{Series: series}
}

// streamConfigFor builds the streaming shape of the test's fixed
// planning question over a regime window.
func streamConfigFor(set *trace.Set) StreamConfig {
	return StreamConfig{
		Zones:          set.Zones(),
		Start:          set.Start(),
		Step:           set.Step(),
		Work:           6 * trace.Hour,
		Deadline:       18 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
	}
}

// TestStreamMatchesRankOnPaperTraces is the tentpole's differential
// contract: feeding a paper-regime window tick by tick, after every
// tick the incrementally maintained table is bit-identical to
// Evaluator.Rank run from scratch over the same prefix — same floats,
// same order, not just close ones.
func TestStreamMatchesRankOnPaperTraces(t *testing.T) {
	ref := &Evaluator{Workers: 1}
	for _, name := range []string{"low/day1", "high/day3", "megaspike/day5", "moderate/day1"} {
		set := paperRegimes()[name]
		if set == nil {
			t.Fatalf("missing regime %s", name)
		}
		cfg := streamConfigFor(set)
		cfg.CrossCheckEvery = -1 // this test IS the cross-check
		se, err := NewStreamEvaluator(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := set.Series[0].Len()
		lastGen := uint64(0)
		for i := 0; i < n; i++ {
			upd, err := se.Advance(set.PricesAt(set.Start() + int64(i)*set.Step()))
			if err != nil {
				t.Fatalf("%s tick %d: %v", name, i, err)
			}
			if upd.Generation < lastGen || (upd.Changed && upd.Generation != lastGen+1) {
				t.Fatalf("%s tick %d: generation %d after %d (changed=%v)", name, i, upd.Generation, lastGen, upd.Changed)
			}
			lastGen = upd.Generation
			req := se.request(prefixSet(set, i+1))
			want, err := ref.Rank(req)
			if err != nil {
				t.Fatalf("%s tick %d: rank: %v", name, i, err)
			}
			if !plansEqual(upd.Plans, want) {
				t.Fatalf("%s tick %d: incremental table diverges from from-scratch Rank\nstream %v\nrank   %v",
					name, i, upd.Plans[:3], want[:3])
			}
		}
		st := se.Stats()
		if st.Fallback {
			t.Fatalf("%s: unexpected fallback", name)
		}
		if st.Rebuilds != 1 {
			t.Errorf("%s: %d rebuilds, want exactly the initial one", name, st.Rebuilds)
		}
		if st.Ticks != uint64(n) || se.Steps() != n {
			t.Errorf("%s: ticks %d steps %d, want %d", name, st.Ticks, se.Steps(), n)
		}
	}
}

// TestStreamCrossCheckClean pins the runtime cross-check itself: at a
// dense cadence over a volatile regime it must never observe a
// divergence between the incremental table and the from-scratch one.
func TestStreamCrossCheckClean(t *testing.T) {
	set := paperRegimes()["high/day1"]
	cfg := streamConfigFor(set)
	cfg.CrossCheckEvery = 7
	se, err := NewStreamEvaluator(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := set.Series[0].Len()
	for i := 0; i < n; i++ {
		if _, err := se.Advance(set.PricesAt(set.Start() + int64(i)*set.Step())); err != nil {
			t.Fatal(err)
		}
	}
	st := se.Stats()
	if st.CrossChecks == 0 {
		t.Fatal("cross-check never ran")
	}
	if st.CrossCheckMismatches != 0 {
		t.Fatalf("%d cross-check mismatches over %d checks", st.CrossCheckMismatches, st.CrossChecks)
	}
}

// TestStreamCompaction pins the retention bound: past MaxSteps the
// window compacts to its trailing half, the resident state rebuilds,
// and the table keeps matching Rank over the compacted window.
func TestStreamCompaction(t *testing.T) {
	set := paperRegimes()["moderate/day3"]
	cfg := streamConfigFor(set)
	cfg.CrossCheckEvery = -1
	cfg.MaxSteps = 48
	se, err := NewStreamEvaluator(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := &Evaluator{Workers: 1}
	// Shadow tape mirroring the evaluator's compaction rule, as the
	// from-scratch reference window.
	shadow, err := trace.NewTape(cfg.Zones, cfg.Start, cfg.Step)
	if err != nil {
		t.Fatal(err)
	}
	n := set.Series[0].Len()
	if n > 120 {
		n = 120
	}
	for i := 0; i < n; i++ {
		row := set.PricesAt(set.Start() + int64(i)*set.Step())
		upd, err := se.Advance(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := shadow.Append(row); err != nil {
			t.Fatal(err)
		}
		if shadow.Len() > cfg.MaxSteps {
			shadow = shadow.Tail(cfg.MaxSteps / 2)
		}
		if se.Steps() != shadow.Len() {
			t.Fatalf("tick %d: window %d, want %d", i, se.Steps(), shadow.Len())
		}
		req := se.request(shadow.Set())
		want, err := ref.Rank(req)
		if err != nil {
			t.Fatal(err)
		}
		if !plansEqual(upd.Plans, want) {
			t.Fatalf("tick %d: table diverges from Rank over the compacted window", i)
		}
	}
	st := se.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction over a 120-tick feed with MaxSteps=48")
	}
	if st.Rebuilds != st.Compactions+1 {
		t.Errorf("rebuilds %d, want one per compaction plus the initial (%d)", st.Rebuilds, st.Compactions+1)
	}
}

// TestStreamFallbackProfiles pins the degraded path: a candidate list
// whose Markov-Daly profiles would collide in Rank's shared predictor
// cache flips the evaluator to permanent per-tick full ranking instead
// of risking a divergent incremental answer.
func TestStreamFallbackProfiles(t *testing.T) {
	set := paperRegimes()["low/day1"]
	cfg := streamConfigFor(set)
	cfg.CrossCheckEvery = -1
	cfg.Candidates = []PolicyFactory{
		{Kind: "markov-daly", New: func() sim.CheckpointPolicy { return NewMarkovDaly() }},
		{Kind: "markov-daly-q10", New: func() sim.CheckpointPolicy {
			m := NewMarkovDaly()
			m.Quantum = 0.1
			return m
		}},
	}
	se, err := NewStreamEvaluator(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !se.Stats().Fallback {
		t.Fatal("colliding Markov-Daly profiles did not flip the evaluator to fallback")
	}
	for i := 0; i < 12; i++ {
		upd, err := se.Advance(set.PricesAt(set.Start() + int64(i)*set.Step()))
		if err != nil {
			t.Fatal(err)
		}
		if upd.Generation == 0 || len(upd.Plans) == 0 {
			t.Fatalf("tick %d: no table in fallback mode", i)
		}
	}
}
