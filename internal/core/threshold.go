package core

import (
	"repro/internal/sim"
)

// Threshold is the §4.4 two-threshold refinement of Edge (after Jung et
// al.): a checkpoint is taken when either
//
//  1. the price shows a rising edge and has crossed the price threshold
//     PriceThresh = (S_min + B) / 2, or
//  2. the execution time at the current bid since the most recent
//     restart or checkpoint exceeds the zone's probabilistic average
//     uptime (TimeThresh).
type Threshold struct {
	// timeThresh holds each active zone's average observed uptime at
	// the current bid, computed from history at Reset.
	timeThresh map[int]float64
}

// NewThreshold returns a Threshold policy.
func NewThreshold() *Threshold { return &Threshold{} }

// Name implements sim.CheckpointPolicy.
func (t *Threshold) Name() string { return "threshold" }

// Reset computes each zone's TimeThresh: the mean length of its up
// intervals at the current bid over the available history.
func (t *Threshold) Reset(env *sim.Env) {
	t.timeThresh = make(map[int]float64, len(env.Spec.Zones))
	for _, zi := range env.Spec.Zones {
		t.timeThresh[zi] = meanUptime(env.PriceHistory(zi, 0x7fffffff), env.Step, env.Spec.Bid)
	}
}

// meanUptime returns the average up-interval length in seconds of a
// price sample sequence at the given bid; 0 when never up.
func meanUptime(prices []float64, step int64, bid float64) float64 {
	var total, runs int64
	var cur int64
	for _, p := range prices {
		if p <= bid {
			cur++
		} else if cur > 0 {
			total += cur
			runs++
			cur = 0
		}
	}
	if cur > 0 {
		total += cur
		runs++
	}
	if runs == 0 {
		return 0
	}
	return float64(total*step) / float64(runs)
}

// CheckpointCondition implements the two-threshold trigger.
func (t *Threshold) CheckpointCondition(env *sim.Env) bool {
	for _, z := range env.UpZones() {
		s := env.PriceNow(z.Index)
		priceThresh := (env.MinObservedPrice(z.Index) + env.Spec.Bid) / 2
		if env.RisingEdge(z.Index) && s >= priceThresh {
			return true
		}
		since := env.LastCheckpointAt
		if z.UpSince > since {
			since = z.UpSince
		}
		if tt := t.timeThresh[z.Index]; tt > 0 && float64(env.Now-since) > tt {
			return true
		}
	}
	return false
}

// ScheduleNextCheckpoint implements sim.CheckpointPolicy (immediate
// checkpoints only, so nothing to plan).
func (t *Threshold) ScheduleNextCheckpoint(env *sim.Env) {}
