package core

import (
	"strconv"
	"sync"

	"repro/internal/market"
	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Evaluator is the reusable evaluation core behind the Adaptive scheme:
// it replays candidate (bid, zone set, policy) permutations over a
// history window on pooled simulation machines, fanning the replays out
// across a bounded worker pool, and computes the closed-form chain
// analyses of the Analytic variant the same way. Results are returned
// in input order, so a parallel evaluation is bit-for-bit identical to
// a sequential one. The zero value is ready to use; an Evaluator is
// safe for concurrent use by multiple goroutines.
type Evaluator struct {
	// Workers bounds the evaluation fan-out; 0 selects GOMAXPROCS.
	Workers int
	// Trace, when non-nil, receives wall-clock spans for sweeps and
	// rankings plus a simulated-time span per estimation replay. Nil
	// disables tracing at zero cost.
	Trace *obs.Tracer
	// DisableBatch routes every estimation replay through the
	// per-permutation machine oracle instead of the columnar batched
	// engine (batch.go). The two paths are bit-identical — the batched
	// engine is differentially tested and fuzzed against the oracle —
	// so this is an escape hatch for debugging and for the paired
	// oracle-vs-batched benchmarks, not a semantic switch.
	DisableBatch bool
	// Sink, when non-nil, receives one DecisionPoint per Rank call
	// (trigger "rank", Seq -1 so the sink assigns the sequence) carrying
	// the best plan and the full ranked grid. This is how quoted exposes
	// its planning decisions on /debug/decisions. Nil costs nothing.
	Sink DecisionSink

	// batchPool recycles batched-sweep scratch (columnar views,
	// availability indexes, flat permutation state) across decision
	// points. Because of it an Evaluator must not be copied after use.
	batchPool sync.Pool
}

// NewEvaluator returns an evaluator with default parallelism.
func NewEvaluator() *Evaluator { return &Evaluator{} }

// estimationSeed fixes the queuing-delay stream of every estimation
// replay, as the original measure helper did.
const estimationSeed = 7

// estimationDelay is the fixed queuing delay of estimation replays, in
// seconds. The batched engine hardcodes the same constant, which keeps
// its replays rng-free like the oracle's.
const estimationDelay int64 = 300

// estimationCfg builds the guard-disabled replay configuration for a
// history window.
func estimationCfg(hist *trace.Set, tc, tr int64) sim.Config {
	const huge = int64(1) << 40
	return sim.Config{
		Trace:                hist,
		Work:                 huge,
		Deadline:             huge,
		CheckpointCost:       tc,
		RestartCost:          tr,
		Delay:                market.FixedDelay(estimationDelay),
		Seed:                 estimationSeed,
		DisableDeadlineGuard: true,
	}
}

// Measure replays one permutation over the history window on a pooled
// machine (deadline guard disabled, effectively unbounded work) and
// extracts its progress and cost rates. A nil or empty history yields a
// zero estimate.
func (ev *Evaluator) Measure(hist *trace.Set, spec sim.RunSpec, tc, tr int64) estimate {
	if hist == nil {
		return estimate{}
	}
	span := float64(hist.Duration())
	if span <= 0 {
		return estimate{}
	}
	// The replay machines deliberately do NOT inherit ev.Trace: a sweep
	// replays hundreds of throwaway permutations, and per-replay sim.run
	// spans would flood the ring and blow the overhead budget. The sweep
	// is summarized by the eval.sweep span instead.
	cfg := estimationCfg(hist, tc, tr)
	var est estimate
	err := sim.RunPooled(cfg, NewStatic("estimate", spec), func(res *sim.Result) {
		est = estimate{
			progressRate: float64(res.MaxProgress) / span,
			costRate:     res.Cost / span,
		}
	})
	if err != nil {
		return estimate{}
	}
	return est
}

// MeasureAll replays every permutation over the history window across
// the worker pool and returns their estimates in input order. Each spec
// must carry its own policy instance (policies hold run state); policy
// instances may share a thread-safe PredictorCache. Unless DisableBatch
// is set the sibling permutations are priced by the columnar batched
// engine, with unsupported specs falling back to per-spec oracle
// replays; either way the results are bit-identical to Measure. The
// batched path leaves the spec's policy instances untouched (the oracle
// mutates their run state during the replay; nothing reads it after).
func (ev *Evaluator) MeasureAll(hist *trace.Set, specs []sim.RunSpec, tc, tr int64) []estimate {
	batched := ev.batchUsable(hist)
	sweep := ev.Trace.Start("eval.sweep")
	if sweep.Recording() {
		sweep.SetAttr("specs", strconv.Itoa(len(specs)))
		sweep.SetAttr("batched", strconv.FormatBool(batched))
	}
	out := make([]estimate, len(specs))
	if batched {
		ev.measureBatch(hist, specs, tc, tr, out)
	} else {
		pool.Run(ev.Workers, len(specs), func(i int) {
			out[i] = ev.Measure(hist, specs[i], tc, tr)
		})
	}
	sweep.End()
	return out
}

// batchUsable reports whether the batched engine may price replays over
// the window; histories the oracle rejects wholesale (nil, empty,
// malformed) keep the oracle path so the error handling stays
// bit-identical.
func (ev *Evaluator) batchUsable(hist *trace.Set) bool {
	return !ev.DisableBatch && hist != nil && hist.Duration() > 0 && hist.Validate() == nil
}

// measureOne prices a single permutation through the batched engine
// when possible, falling back to the oracle replay otherwise. It exists
// for the Adaptive scheme's churn-damping re-evaluation, which prices
// one incumbent spec between sweeps.
func (ev *Evaluator) measureOne(hist *trace.Set, spec sim.RunSpec, tc, tr int64) estimate {
	if !ev.batchUsable(hist) {
		return ev.Measure(hist, spec, tc, tr)
	}
	b := ev.getBatch(hist, tc, tr)
	if !b.addPerm(0, spec) {
		ev.batchPool.Put(b)
		return ev.Measure(hist, spec, tc, tr)
	}
	p := &b.perms[0]
	b.runPerm(p)
	span := float64(hist.Duration())
	est := estimate{
		progressRate: float64(p.maxProgress) / span,
		costRate:     p.cost / span,
	}
	ev.batchPool.Put(b)
	return est
}

// getBatch fetches pooled batch scratch armed for the window.
func (ev *Evaluator) getBatch(hist *trace.Set, tc, tr int64) *batchState {
	b, _ := ev.batchPool.Get().(*batchState)
	if b == nil {
		b = &batchState{}
	}
	b.reset(hist, tc, tr)
	return b
}

// measureBatch prices the specs through the batched engine, writing
// estimates into out in input order. The supported permutations replay
// serially — the memo layers make the shared model work cheap, so a
// worker fan-out would only buy lock traffic and allocation churn, and
// serial replay keeps the results trivially worker-count-independent.
// Specs the engine does not support take per-spec oracle replays across
// the worker pool.
func (ev *Evaluator) measureBatch(hist *trace.Set, specs []sim.RunSpec, tc, tr int64, out []estimate) {
	b := ev.getBatch(hist, tc, tr)
	for i := range specs {
		if !b.addPerm(i, specs[i]) {
			b.fallback = append(b.fallback, i)
		}
	}
	span := float64(hist.Duration())
	for j := range b.perms {
		p := &b.perms[j]
		b.runPerm(p)
		out[p.out] = estimate{
			progressRate: float64(p.maxProgress) / span,
			costRate:     p.cost / span,
		}
	}
	if len(b.fallback) > 0 {
		pool.Run(ev.Workers, len(b.fallback), func(j int) {
			i := b.fallback[j]
			out[i] = ev.Measure(hist, specs[i], tc, tr)
		})
	}
	ev.batchPool.Put(b)
}

// zoneAnalysis holds the fitted chain and per-bid closed-form analyses
// of one zone at one decision point.
type zoneAnalysis struct {
	ok       bool
	analyses []opt.Analysis // indexed like the bid grid
}

// AnalyzeZones fits one chain per zone on the trailing history visible
// at env.Now and computes the closed-form opt.Analysis for every (zone,
// bid) pair across the worker pool — each pair exactly once, where the
// sequential Analytic path recomputed shared zones for every redundancy
// degree. The result is indexed [zone][bid]; zones whose history cannot
// fit a chain are marked not-ok.
func (ev *Evaluator) AnalyzeZones(env *sim.Env, bids []float64, span int64, quantum float64, ov opt.Overheads) []zoneAnalysis {
	asp := ev.Trace.Start("eval.analyze-zones")
	defer asp.End()
	nz := len(env.Zones)
	out := make([]zoneAnalysis, nz)
	chains := make([]*markov.Model, nz)
	pool.Run(ev.Workers, nz, func(zi int) {
		hist := markov.Quantize(env.PriceHistory(zi, span), quantum)
		if m, err := markov.Fit(hist, env.Step); err == nil {
			chains[zi] = m
		}
	})
	// Flatten (zone, bid) pairs so the heavy stationary-distribution
	// solves run in parallel; slot i maps back deterministically.
	nb := len(bids)
	analyses := make([]opt.Analysis, nz*nb)
	pool.Run(ev.Workers, nz*nb, func(i int) {
		zi, bi := i/nb, i%nb
		if chains[zi] == nil {
			return
		}
		analyses[i] = opt.Analyze(chains[zi], bids[bi], ov)
	})
	for zi := 0; zi < nz; zi++ {
		out[zi] = zoneAnalysis{ok: chains[zi] != nil, analyses: analyses[zi*nb : (zi+1)*nb]}
	}
	return out
}

// PredictorCache memoizes the prediction models the Adaptive scheme's
// Markov-Daly candidates build during estimation replays: fitted price
// chains per (zone, time) and Daly checkpoint intervals per (time, bid,
// zone set). Every permutation of one decision point replays the same
// history window, so without the cache each of them refits identical
// chains at identical replay times. The cache is safe for concurrent
// use; scope one cache to a single decision point (entries are keyed by
// absolute time, so stale entries are never returned, only unused).
type PredictorCache struct {
	mu        sync.Mutex
	chains    map[chainKey]*markov.Model
	intervals map[intervalKey]float64
}

// NewPredictorCache returns an empty cache.
func NewPredictorCache() *PredictorCache {
	return &PredictorCache{
		chains:    make(map[chainKey]*markov.Model),
		intervals: make(map[intervalKey]float64),
	}
}

// chainKey identifies one fitted chain: everything markov.Fit's input
// depends on inside an estimation replay over a fixed trace.
type chainKey struct {
	zone    int
	now     int64
	span    int64
	quantum float64
}

// intervalKey identifies one Daly interval: everything the Markov-Daly
// schedule computation depends on inside a replay over a fixed trace.
type intervalKey struct {
	now    int64
	bid    float64
	tc     int64
	higher bool
	zones  uint64 // packed zone indices
}

// packZones encodes up to eight zone indices (< 256 each) into one key
// word; zone sets beyond that fall back to an unpacked sentinel that
// simply disables interval caching.
func packZones(zones []int) (uint64, bool) {
	if len(zones) > 8 {
		return 0, false
	}
	var key uint64
	for i, zi := range zones {
		if zi < 0 || zi > 0xfe {
			return 0, false
		}
		key |= uint64(zi+1) << (8 * i)
	}
	return key, true
}

// chain returns the cached fitted model for the key, fitting and
// storing it on first use via fit. A fit failure is cached as nil.
func (c *PredictorCache) chain(key chainKey, fit func() *markov.Model) *markov.Model {
	c.mu.Lock()
	m, ok := c.chains[key]
	c.mu.Unlock()
	if ok {
		return m
	}
	// Fit outside the lock: fits are deterministic, so concurrent
	// duplicate work is harmless and the winner is value-identical.
	m = fit()
	c.mu.Lock()
	if prev, ok := c.chains[key]; ok {
		m = prev
	} else {
		c.chains[key] = m
	}
	c.mu.Unlock()
	return m
}

// interval returns the cached Daly interval for the key, computing and
// storing it on first use via compute.
func (c *PredictorCache) interval(key intervalKey, compute func() float64) float64 {
	c.mu.Lock()
	v, ok := c.intervals[key]
	c.mu.Unlock()
	if ok {
		return v
	}
	v = compute()
	c.mu.Lock()
	c.intervals[key] = v
	c.mu.Unlock()
	return v
}
