package httpx

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"time"
)

// ProxyDialTimeout bounds how long the proxy transport waits for a
// backend connection; a dead backend must fail fast so the router can
// fail over instead of pinning a client for the OS connect timeout.
const ProxyDialTimeout = 2 * time.Second

// Proxy returns a reverse proxy to target, sharing the repository's
// serving policy: a bounded connect timeout so dead backends fail fast,
// and transport errors surfaced as a 502 JSON error envelope (matching
// the quote service's error shape) instead of the default bare text.
// onError, when non-nil, observes every transport-level failure — the
// cluster router uses it to count backend faults without parsing
// response bodies.
func Proxy(target *url.URL, onError func(error)) http.Handler {
	p := httputil.NewSingleHostReverseProxy(target)
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.DialContext = (&net.Dialer{Timeout: ProxyDialTimeout}).DialContext
	p.Transport = transport
	// Streaming passthrough: quote plans are pushed over long-lived SSE
	// responses, where a buffered frame is a stale plan on the client.
	// A negative FlushInterval forwards every upstream write immediately
	// instead of coalescing on a timer; one-shot JSON responses are a
	// single write, so they pay nothing for it.
	p.FlushInterval = -1
	p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		if onError != nil {
			onError(err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		json.NewEncoder(w).Encode(struct {
			Error string `json:"error"`
		}{Error: "upstream unreachable: " + err.Error()})
	}
	return p
}
