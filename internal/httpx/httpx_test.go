package httpx

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestNewServerHardened asserts the shared constructor applies the
// slowloris protections every daemon relies on.
func TestNewServerHardened(t *testing.T) {
	srv := NewServer(":0", http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout not set")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout not set")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout not set")
	}
}

// TestServeGracefulShutdown serves over an ephemeral listener, makes a
// request, cancels the context and expects a clean nil return.
func TestServeGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("pong"))
	})
	srv := NewServer("", mux)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, srv, ln, time.Second) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("got body %q", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
}
