// Package httpx centralises the repository's HTTP serving policy so
// every daemon (cmd/pricefeedd, cmd/quoted) ships the same hardened
// server: header/read/idle timeouts against slowloris-style slow
// clients, and context-driven graceful drain so in-flight requests
// finish before the process exits.
package httpx

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Server timeout policy. ReadHeaderTimeout bounds the slow-header
// attack, ReadTimeout bounds the whole request read (our request
// bodies are tiny), IdleTimeout reaps abandoned keep-alive
// connections. Write timeouts are left to handlers: evaluation
// latency is load-dependent and bounded by the admission gate instead.
const (
	ReadHeaderTimeout = 10 * time.Second
	ReadTimeout       = 30 * time.Second
	IdleTimeout       = 120 * time.Second
	// DefaultGrace is the default drain budget on shutdown.
	DefaultGrace = 5 * time.Second
)

// Timeouts is an overridable server timeout policy, for tests that
// need aggressive bounds without waiting out the production constants.
type Timeouts struct {
	// ReadHeader bounds reading the request headers.
	ReadHeader time.Duration
	// Read bounds reading the whole request.
	Read time.Duration
	// Idle reaps abandoned keep-alive connections.
	Idle time.Duration
}

// DefaultTimeouts returns the repository's standard policy.
func DefaultTimeouts() Timeouts {
	return Timeouts{ReadHeader: ReadHeaderTimeout, Read: ReadTimeout, Idle: IdleTimeout}
}

// NewServer returns an http.Server with the repository's standard
// timeouts applied.
func NewServer(addr string, h http.Handler) *http.Server {
	return NewServerWith(addr, h, DefaultTimeouts())
}

// NewServerWith is NewServer with an explicit timeout policy.
func NewServerWith(addr string, h http.Handler, to Timeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: to.ReadHeader,
		ReadTimeout:       to.Read,
		IdleTimeout:       to.Idle,
	}
}

// ListenAndServe runs srv until ctx is cancelled, then drains in-flight
// requests for at most grace (0 selects DefaultGrace) before forcing
// connections closed. It returns nil on a clean, drained shutdown and
// the serve error if the listener fails first.
func ListenAndServe(ctx context.Context, srv *http.Server, grace time.Duration) error {
	return serve(ctx, srv, grace, srv.ListenAndServe)
}

// Serve is ListenAndServe over an existing listener, for ephemeral
// ports in tests and the self-benchmark.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	return serve(ctx, srv, grace, func() error { return srv.Serve(ln) })
}

// serve runs the accept loop until ctx cancellation, then shuts down.
func serve(ctx context.Context, srv *http.Server, grace time.Duration, run func() error) error {
	if grace <= 0 {
		grace = DefaultGrace
	}
	errCh := make(chan error, 1)
	go func() { errCh <- run() }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if serveErr := <-errCh; !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}
