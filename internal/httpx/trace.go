package httpx

import (
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// statusWriter captures the response status for the request span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write defaults the status to 200 on an implicit header.
func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Wrap returns h instrumented with a wall-clock request span per
// request, named "METHOD /path", carrying the final status as an
// attribute. The span is placed in the request context so handlers can
// hang child spans off it via obs.FromContext. A nil tracer returns h
// unchanged.
func Wrap(h http.Handler, tracer *obs.Tracer) http.Handler {
	if tracer == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		span := tracer.Start(r.Method + " " + r.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r.WithContext(obs.NewContext(r.Context(), span)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		span.SetAttr("status", strconv.Itoa(sw.status))
		span.End()
	})
}
