package httpx

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestReadHeaderTimeoutEnforced opens a raw TCP connection, sends a
// partial request line and never finishes the headers; a server built
// with a tiny ReadHeader timeout must hang up rather than hold the
// slowloris connection open.
func TestReadHeaderTimeoutEnforced(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith("", http.NotFoundHandler(), Timeouts{
		ReadHeader: 50 * time.Millisecond,
		Read:       time.Second,
		Idle:       time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, srv, ln, time.Second) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\nX-Slow:")); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection once the header deadline
	// passes; the read unblocks with EOF/reset well before our own
	// deadline if enforcement works.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 512)
	start := time.Now()
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("slow-header connection survived %v; ReadHeader timeout not enforced", elapsed)
	}
	cancel()
	<-done
}

// TestGracefulDrainOrdering starts a request that is still in flight
// when shutdown begins and asserts Serve returns only after the handler
// completed and the client received the full response.
func TestGracefulDrainOrdering(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var handlerDone atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		handlerDone.Store(true)
		fmt.Fprint(w, "drained")
	})
	srv := NewServer("", mux)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- Serve(ctx, srv, ln, 5*time.Second) }()

	type result struct {
		body string
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			resCh <- result{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		resCh <- result{body: string(body), err: err}
	}()

	<-entered
	cancel() // begin shutdown with the request still in flight
	select {
	case <-serveDone:
		t.Fatal("Serve returned while a request was in flight")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)

	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
		if !handlerDone.Load() {
			t.Fatal("Serve returned before the in-flight handler finished")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the handler was released")
	}
	res := <-resCh
	if res.err != nil || res.body != "drained" {
		t.Fatalf("in-flight client got (%q, %v), want full response", res.body, res.err)
	}
}

// TestWrapTracesRequests checks the middleware records one span per
// request with the method/path name, the final status attribute, and a
// context the handler can hang child spans off.
func TestWrapTracesRequests(t *testing.T) {
	tracer := obs.NewTracer(16)
	h := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		child := obs.FromContext(r.Context()).Child("handler.work")
		child.End()
		w.WriteHeader(http.StatusTeapot)
	}), tracer)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/quote", nil))

	spans := tracer.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	child, root := spans[0], spans[1]
	if root.Name != "GET /v1/quote" {
		t.Fatalf("root span name = %q", root.Name)
	}
	if child.Parent != root.ID || child.Trace != root.Trace {
		t.Fatalf("handler child not parented to request span")
	}
	want := obs.Attr{Key: "status", Value: "418"}
	if len(root.Attrs) != 1 || root.Attrs[0] != want {
		t.Fatalf("root attrs = %v, want [%v]", root.Attrs, want)
	}
}

// TestWrapImplicitStatus checks a handler that writes a body without
// calling WriteHeader is recorded as 200.
func TestWrapImplicitStatus(t *testing.T) {
	tracer := obs.NewTracer(4)
	h := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}), tracer)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	s := tracer.Spans()[0]
	if len(s.Attrs) != 1 || s.Attrs[0].Value != "200" {
		t.Fatalf("attrs = %v, want status 200", s.Attrs)
	}
}

// TestWrapConcurrent drives the middleware from many goroutines; under
// -race this certifies the tracer and statusWriter wiring, and the span
// total must balance.
func TestWrapConcurrent(t *testing.T) {
	tracer := obs.NewTracer(64)
	h := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body struct{ N int }
		json.NewDecoder(r.Body).Decode(&body)
		w.WriteHeader(http.StatusOK)
	}), tracer)
	srv := httptest.NewServer(h)
	defer srv.Close()

	const workers, per = 8, 25
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				resp, err := http.Get(srv.URL + "/load")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if tracer.Total() != workers*per {
		t.Fatalf("recorded %d spans, want %d", tracer.Total(), workers*per)
	}
}
