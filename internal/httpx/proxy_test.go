package httpx

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// TestProxyForwards round-trips a request through the proxy and checks
// method, path, body and headers arrive intact.
func TestProxyForwards(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if r.Method != http.MethodPost || r.URL.Path != "/v1/quote" || string(body) != `{"x":1}` {
			t.Errorf("backend saw %s %s body %q", r.Method, r.URL.Path, body)
		}
		if got := r.Header.Get("X-Tenant"); got != "acme" {
			t.Errorf("X-Tenant header = %q, want acme", got)
		}
		w.Header().Set("X-Backend", "b0")
		w.Write([]byte("ok"))
	}))
	defer backend.Close()
	u, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	p := Proxy(u, nil)

	req := httptest.NewRequest(http.MethodPost, "/v1/quote", strings.NewReader(`{"x":1}`))
	req.Header.Set("X-Tenant", "acme")
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Fatalf("proxied response %d %q", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Backend"); got != "b0" {
		t.Fatalf("response header X-Backend = %q, want b0", got)
	}
}

// TestProxyStreamsIncrementally pins the streaming passthrough: a
// frame the backend writes and flushes mid-response must reach the
// client while the backend is still holding the connection open — the
// proxy may not buffer the stream.
func TestProxyStreamsIncrementally(t *testing.T) {
	release := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("X-Plan-Generation", "7")
		io.WriteString(w, "event: plan\ndata: {\"generation\":7}\n\n")
		w.(http.Flusher).Flush()
		<-release
		io.WriteString(w, "event: plan\ndata: {\"generation\":8}\n\n")
	}))
	defer backend.Close()
	defer close(release)
	u, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(Proxy(u, nil))
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/quotes/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Plan-Generation"); got != "7" {
		t.Fatalf("X-Plan-Generation = %q, want 7", got)
	}
	type chunk struct {
		data string
		err  error
	}
	reads := make(chan chunk)
	go func() {
		buf := make([]byte, 512)
		for {
			n, err := resp.Body.Read(buf)
			reads <- chunk{data: string(buf[:n]), err: err}
			if err != nil {
				return
			}
		}
	}()
	// The first frame must arrive while the backend is blocked on
	// release — i.e. before the response is complete.
	var first strings.Builder
	deadline := time.After(10 * time.Second)
	for !strings.Contains(first.String(), `{"generation":7}`) {
		select {
		case c := <-reads:
			if c.err != nil {
				t.Fatalf("stream ended early with %q (%v)", first.String()+c.data, c.err)
			}
			first.WriteString(c.data)
		case <-deadline:
			t.Fatal("first frame never flushed through the proxy")
		}
	}
	release <- struct{}{}
	var rest strings.Builder
	for c := range reads {
		rest.WriteString(c.data)
		if c.err != nil {
			break
		}
	}
	if !strings.Contains(rest.String(), `{"generation":8}`) {
		t.Fatalf("second frame missing: %q", rest.String())
	}
}

// TestProxyDeadBackend checks a connection failure maps to a 502 JSON
// envelope and fires the error callback, so a router can count the
// fault and fail over.
func TestProxyDeadBackend(t *testing.T) {
	// A listener that is immediately closed yields a port that refuses
	// connections.
	dead := httptest.NewServer(http.NotFoundHandler())
	u, err := url.Parse(dead.URL)
	if err != nil {
		t.Fatal(err)
	}
	dead.Close()

	var seen int
	p := Proxy(u, func(error) { seen++ })
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("dead backend returned %d, want 502", rec.Code)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error == "" {
		t.Fatalf("bad 502 envelope %q (%v)", rec.Body.String(), err)
	}
	if seen != 1 {
		t.Fatalf("error callback fired %d times, want 1", seen)
	}
}
