// Package spotapi bridges Amazon's spot price history format and the
// repository's trace model.
//
// The AWS API (DescribeSpotPriceHistory; `aws ec2
// describe-spot-price-history` in the CLI) reports price *change
// events* — one record per movement per zone — while the simulation
// consumes uniformly sampled step functions. This package parses the
// AWS JSON document into a trace.Set (resampling onto the 5-minute
// grid the paper uses), exports a trace.Set back into the AWS format,
// and serves/fetches histories over HTTP so the live scheduler can
// consume a price feed with the same shape real deployments see.
package spotapi

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/trace"
)

// CC2InstanceType is the instance type of the paper's experiments.
const CC2InstanceType = "cc2.8xlarge"

// LinuxProduct is the product description the paper's history uses.
const LinuxProduct = "Linux/UNIX"

// Record is one AWS spot price change event.
type Record struct {
	AvailabilityZone   string    `json:"AvailabilityZone"`
	InstanceType       string    `json:"InstanceType"`
	ProductDescription string    `json:"ProductDescription"`
	SpotPrice          string    `json:"SpotPrice"` // AWS serialises the price as a string
	Timestamp          time.Time `json:"Timestamp"`
}

// History is the AWS response document.
type History struct {
	SpotPriceHistory []Record `json:"SpotPriceHistory"`
}

// Parse decodes an AWS history document and resamples it into an
// aligned trace.Set on the given step grid (trace.DefaultStep if step
// is 0). The returned epoch is the wall-clock time of the first sample;
// trace times are seconds since that epoch.
func Parse(r io.Reader, step int64) (*trace.Set, time.Time, error) {
	var doc History
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, time.Time{}, fmt.Errorf("spotapi: decoding history: %w", err)
	}
	return FromRecords(doc.SpotPriceHistory, step)
}

// FromRecords resamples change events into a trace.Set.
func FromRecords(records []Record, step int64) (*trace.Set, time.Time, error) {
	if step <= 0 {
		step = trace.DefaultStep
	}
	if len(records) == 0 {
		return nil, time.Time{}, fmt.Errorf("spotapi: empty history")
	}
	type event struct {
		at    time.Time
		price float64
	}
	byZone := map[string][]event{}
	var zones []string
	var first, last time.Time
	for i, rec := range records {
		price, err := strconv.ParseFloat(rec.SpotPrice, 64)
		if err != nil {
			return nil, time.Time{}, fmt.Errorf("spotapi: record %d has bad price %q: %w", i, rec.SpotPrice, err)
		}
		if price < 0 {
			return nil, time.Time{}, fmt.Errorf("spotapi: record %d has negative price", i)
		}
		if _, ok := byZone[rec.AvailabilityZone]; !ok {
			zones = append(zones, rec.AvailabilityZone)
		}
		byZone[rec.AvailabilityZone] = append(byZone[rec.AvailabilityZone], event{at: rec.Timestamp, price: price})
		if first.IsZero() || rec.Timestamp.Before(first) {
			first = rec.Timestamp
		}
		if rec.Timestamp.After(last) {
			last = rec.Timestamp
		}
	}
	sort.Strings(zones)

	epoch := first.Truncate(time.Duration(step) * time.Second)
	samples := int(last.Sub(epoch)/(time.Duration(step)*time.Second)) + 1
	series := make([]*trace.Series, 0, len(zones))
	for _, zone := range zones {
		evs := byZone[zone]
		sort.Slice(evs, func(i, j int) bool { return evs[i].at.Before(evs[j].at) })
		prices := make([]float64, samples)
		cur := evs[0].price
		next := 0
		for i := 0; i < samples; i++ {
			at := epoch.Add(time.Duration(int64(i)*step) * time.Second)
			for next < len(evs) && !evs[next].at.After(at) {
				cur = evs[next].price
				next++
			}
			prices[i] = cur
		}
		series = append(series, &trace.Series{Zone: zone, Epoch: 0, Step: step, Prices: prices})
	}
	set, err := trace.NewSet(series...)
	if err != nil {
		return nil, time.Time{}, err
	}
	return set, epoch, nil
}

// ToRecords exports a trace.Set as AWS change events: one record per
// price movement per zone (plus the initial price), with wall-clock
// timestamps anchored at epoch.
func ToRecords(set *trace.Set, epoch time.Time) []Record {
	var out []Record
	for _, s := range set.Series {
		prev := -1.0
		for i, p := range s.Prices {
			if p == prev {
				continue
			}
			prev = p
			at := epoch.Add(time.Duration(s.Epoch+int64(i)*s.Step) * time.Second)
			out = append(out, Record{
				AvailabilityZone:   s.Zone,
				InstanceType:       CC2InstanceType,
				ProductDescription: LinuxProduct,
				SpotPrice:          strconv.FormatFloat(p, 'f', 6, 64),
				Timestamp:          at,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Timestamp.Equal(out[j].Timestamp) {
			return out[i].Timestamp.Before(out[j].Timestamp)
		}
		return out[i].AvailabilityZone < out[j].AvailabilityZone
	})
	return out
}

// Write encodes the set as an AWS history document.
func Write(w io.Writer, set *trace.Set, epoch time.Time) error {
	doc := History{SpotPriceHistory: ToRecords(set, epoch)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
