package spotapi

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/trace"
)

// Handler serves a trace.Set's price history in the AWS document format
// at GET /spot-price-history. Optional query parameters start and end
// (RFC 3339) bound the served window; times outside the trace are
// clamped. It backs demos and tests of the live scheduler without any
// cloud access.
func Handler(set *trace.Set, epoch time.Time) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /spot-price-history", func(w http.ResponseWriter, r *http.Request) {
		window := set
		from, to := set.Start(), set.End()
		if v := r.URL.Query().Get("start"); v != "" {
			t, err := time.Parse(time.RFC3339, v)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad start: %v", err), http.StatusBadRequest)
				return
			}
			from = int64(t.Sub(epoch) / time.Second)
		}
		if v := r.URL.Query().Get("end"); v != "" {
			t, err := time.Parse(time.RFC3339, v)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad end: %v", err), http.StatusBadRequest)
				return
			}
			to = int64(t.Sub(epoch) / time.Second)
		}
		window = set.Slice(from, to)
		if window.Duration() == 0 {
			http.Error(w, "window outside trace", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := Write(w, window, epoch); err != nil {
			// Headers are gone; nothing more to do than log via the
			// server's error path.
			return
		}
	})
	return mux
}

// Client fetches spot price history from a Handler-compatible endpoint.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// Fetch retrieves the history between start and end (zero values fetch
// everything) and resamples it onto the given step grid.
func (c *Client) Fetch(ctx context.Context, start, end time.Time, step int64) (*trace.Set, time.Time, error) {
	url := c.BaseURL + "/spot-price-history"
	sep := "?"
	if !start.IsZero() {
		url += sep + "start=" + start.UTC().Format(time.RFC3339)
		sep = "&"
	}
	if !end.IsZero() {
		url += sep + "end=" + end.UTC().Format(time.RFC3339)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, time.Time{}, err
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, time.Time{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, time.Time{}, fmt.Errorf("spotapi: server returned %s", resp.Status)
	}
	return Parse(resp.Body, step)
}
