package spotapi

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/tracegen"
)

// FuzzParse exercises the AWS-format parser: never panic; accepted
// inputs yield valid sets.
func FuzzParse(f *testing.F) {
	var seed bytes.Buffer
	set := tracegen.LowVolatility(1).Slice(0, 6*3600)
	_ = Write(&seed, set, time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC))
	f.Add(seed.String())
	f.Add(`{"SpotPriceHistory":[{"AvailabilityZone":"a","SpotPrice":"0.30","Timestamp":"2013-03-01T00:00:00Z"}]}`)
	f.Add(`{"SpotPriceHistory":[]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, in string) {
		got, _, err := Parse(strings.NewReader(in), 0)
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid set: %v", err)
		}
	})
}
