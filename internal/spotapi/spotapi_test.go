package spotapi

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

var testEpoch = time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC)

func TestRoundTrip(t *testing.T) {
	set := tracegen.LowVolatility(5).Slice(0, 24*trace.Hour)
	var buf bytes.Buffer
	if err := Write(&buf, set, testEpoch); err != nil {
		t.Fatal(err)
	}
	got, epoch, err := Parse(&buf, trace.DefaultStep)
	if err != nil {
		t.Fatal(err)
	}
	if !epoch.Equal(testEpoch) {
		t.Fatalf("epoch = %v, want %v", epoch, testEpoch)
	}
	if got.NumZones() != set.NumZones() {
		t.Fatalf("zones = %d", got.NumZones())
	}
	// Change events lose trailing constant samples (no event marks the
	// end of the trace), so compare over the parsed length.
	for zi, gs := range got.Series {
		var ws *trace.Series
		for _, s := range set.Series {
			if s.Zone == gs.Zone {
				ws = s
			}
		}
		if ws == nil {
			t.Fatalf("zone %q missing", gs.Zone)
		}
		for i, p := range gs.Prices {
			at := int64(i) * gs.Step
			if want := ws.PriceAt(at); p != want {
				t.Fatalf("zone %s sample %d (zi %d) = %g, want %g", gs.Zone, i, zi, p, want)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, err := Parse(strings.NewReader("{"), 0); err == nil {
		t.Fatal("accepted truncated JSON")
	}
	if _, _, err := Parse(strings.NewReader(`{"SpotPriceHistory":[]}`), 0); err == nil {
		t.Fatal("accepted empty history")
	}
	bad := `{"SpotPriceHistory":[{"AvailabilityZone":"a","SpotPrice":"x","Timestamp":"2013-03-01T00:00:00Z"}]}`
	if _, _, err := Parse(strings.NewReader(bad), 0); err == nil {
		t.Fatal("accepted bad price")
	}
	neg := `{"SpotPriceHistory":[{"AvailabilityZone":"a","SpotPrice":"-1","Timestamp":"2013-03-01T00:00:00Z"}]}`
	if _, _, err := Parse(strings.NewReader(neg), 0); err == nil {
		t.Fatal("accepted negative price")
	}
}

func TestToRecordsEmitsOnlyChanges(t *testing.T) {
	s := trace.NewSeries("us-east-1a", 0, []float64{0.3, 0.3, 0.4, 0.4, 0.3})
	set := trace.MustNewSet(s)
	recs := ToRecords(set, testEpoch)
	if len(recs) != 3 { // 0.3 at t0, 0.4 at t2, 0.3 at t4
		t.Fatalf("records = %d: %+v", len(recs), recs)
	}
	if recs[0].SpotPrice != "0.300000" || recs[0].InstanceType != CC2InstanceType {
		t.Fatalf("first record = %+v", recs[0])
	}
	if want := testEpoch.Add(2 * 300 * time.Second); !recs[1].Timestamp.Equal(want) {
		t.Fatalf("second record at %v, want %v", recs[1].Timestamp, want)
	}
}

func TestHTTPServerAndClient(t *testing.T) {
	set := tracegen.HighVolatility(9).Slice(0, 12*trace.Hour)
	srv := httptest.NewServer(Handler(set, testEpoch))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	got, epoch, err := c.Fetch(context.Background(), time.Time{}, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumZones() != 3 {
		t.Fatalf("zones = %d", got.NumZones())
	}
	if !epoch.Equal(testEpoch) {
		t.Fatalf("epoch = %v", epoch)
	}

	// Bounded fetch.
	start := testEpoch.Add(2 * time.Hour)
	end := testEpoch.Add(6 * time.Hour)
	bounded, _, err := c.Fetch(context.Background(), start, end, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Duration() > 6*trace.Hour {
		t.Fatalf("bounded duration = %d", bounded.Duration())
	}

	// Errors.
	resp, err := srv.Client().Get(srv.URL + "/spot-price-history?start=garbage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad start → %d", resp.StatusCode)
	}
	outside := testEpoch.Add(1000 * time.Hour)
	if _, _, err := c.Fetch(context.Background(), outside, outside.Add(time.Hour), 0); err == nil {
		t.Fatal("accepted out-of-range window")
	}
}

func TestClientBadServer(t *testing.T) {
	c := &Client{BaseURL: "http://127.0.0.1:1"}
	if _, _, err := c.Fetch(context.Background(), time.Time{}, time.Time{}, 0); err == nil {
		t.Fatal("expected connection error")
	}
}

func TestHandlerRejectsNonGet(t *testing.T) {
	set := tracegen.LowVolatility(2).Slice(0, 2*trace.Hour)
	srv := httptest.NewServer(Handler(set, testEpoch))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/spot-price-history", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST → %d, want 405", resp.StatusCode)
	}
}

func TestHandlerBadEnd(t *testing.T) {
	set := tracegen.LowVolatility(2).Slice(0, 2*trace.Hour)
	srv := httptest.NewServer(Handler(set, testEpoch))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/spot-price-history?end=garbage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad end → %d, want 400", resp.StatusCode)
	}
}
