// Package changepoint implements two-sided CUSUM change detection on
// price streams.
//
// The paper's Rising Edge policy reacts to every upward price tick,
// which its evaluation shows is too eager: noise triggers checkpoints
// while genuine regime shifts are indistinguishable from jitter. CUSUM
// accumulates deviations from a reference level and signals only when
// the cumulative drift exceeds a threshold — the classic sequential
// change detector. The core package's Changepoint policy builds on it
// as an extension of the paper's Edge family.
package changepoint

import (
	"fmt"
	"math"
)

// Detector is a two-sided CUSUM detector over a scalar stream.
type Detector struct {
	// Target is the reference level deviations are measured against.
	Target float64
	// Drift is the slack per observation (κ): deviations below it are
	// treated as noise.
	Drift float64
	// Threshold is the cumulative deviation (h) that signals a change.
	Threshold float64

	gPos, gNeg float64
}

// New returns a detector centred on target. Drift and threshold are in
// the stream's units (dollars for prices).
func New(target, drift, threshold float64) (*Detector, error) {
	if drift < 0 || threshold <= 0 {
		return nil, fmt.Errorf("changepoint: drift %g must be >= 0 and threshold %g > 0", drift, threshold)
	}
	return &Detector{Target: target, Drift: drift, Threshold: threshold}, nil
}

// Direction labels which side of the reference level changed.
type Direction int

// Directions.
const (
	None Direction = iota
	Up
	DownShift
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case None:
		return "none"
	case Up:
		return "up"
	case DownShift:
		return "down"
	default:
		return "unknown"
	}
}

// Observe feeds one sample and reports a detected change (if any). On
// detection the detector re-centres on the new level and resets its
// sums, ready to detect the next change.
func (d *Detector) Observe(x float64) Direction {
	dev := x - d.Target
	d.gPos = math.Max(0, d.gPos+dev-d.Drift)
	d.gNeg = math.Max(0, d.gNeg-dev-d.Drift)
	switch {
	case d.gPos > d.Threshold:
		d.Recenter(x)
		return Up
	case d.gNeg > d.Threshold:
		d.Recenter(x)
		return DownShift
	default:
		return None
	}
}

// Recenter moves the reference level and clears the sums.
func (d *Detector) Recenter(target float64) {
	d.Target = target
	d.gPos, d.gNeg = 0, 0
}

// Pressure returns the positive-side cumulative sum as a fraction of
// the threshold — how close the stream is to an upward detection.
func (d *Detector) Pressure() float64 {
	if d.Threshold <= 0 {
		return 0
	}
	return d.gPos / d.Threshold
}
