package changepoint

import (
	"math/rand/v2"
	"testing"
)

func TestDetectsUpShift(t *testing.T) {
	d, err := New(0.30, 0.02, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Noise around the target: no detection.
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 200; i++ {
		if got := d.Observe(0.30 + 0.01*rng.NormFloat64()); got != None {
			t.Fatalf("false positive at %d: %v", i, got)
		}
	}
	// A sustained +0.15 shift: detected within a few samples.
	detected := -1
	for i := 0; i < 20; i++ {
		if d.Observe(0.45) == Up {
			detected = i
			break
		}
	}
	if detected < 0 {
		t.Fatal("up shift never detected")
	}
	if detected > 5 {
		t.Fatalf("detection took %d samples", detected)
	}
	// After recentring, the new level is quiet.
	for i := 0; i < 50; i++ {
		if d.Observe(0.45) != None {
			t.Fatal("re-detected the same level")
		}
	}
}

func TestDetectsDownShift(t *testing.T) {
	d, _ := New(0.50, 0.02, 0.10)
	got := None
	for i := 0; i < 20 && got == None; i++ {
		got = d.Observe(0.30)
	}
	if got != DownShift {
		t.Fatalf("direction = %v", got)
	}
	if d.Target != 0.30 {
		t.Fatalf("recentre target = %g", d.Target)
	}
}

func TestSingleTickDoesNotTrigger(t *testing.T) {
	// The failure mode of the Edge policy: one price tick up then back.
	d, _ := New(0.30, 0.02, 0.10)
	if d.Observe(0.35) != None {
		t.Fatal("single tick triggered")
	}
	for i := 0; i < 100; i++ {
		if d.Observe(0.30) != None {
			t.Fatal("return to target triggered")
		}
	}
}

func TestPressure(t *testing.T) {
	d, _ := New(0.30, 0.0, 0.10)
	if d.Pressure() != 0 {
		t.Fatal("initial pressure nonzero")
	}
	d.Observe(0.35)
	if p := d.Pressure(); p <= 0.4 || p >= 0.6 {
		t.Fatalf("pressure = %g, want ≈ 0.5", p)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0.3, -1, 0.1); err == nil {
		t.Fatal("accepted negative drift")
	}
	if _, err := New(0.3, 0.01, 0); err == nil {
		t.Fatal("accepted zero threshold")
	}
}

func TestDirectionString(t *testing.T) {
	if None.String() != "none" || Up.String() != "up" || DownShift.String() != "down" || Direction(9).String() != "unknown" {
		t.Fatal("Direction.String mismatch")
	}
}
