package quote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Long-poll bounds.
const (
	defaultPollTimeout = 30 * time.Second
	maxPollTimeout     = 60 * time.Second
)

// registerStream mounts the streaming endpoint:
//
//	GET /v1/quotes/stream?work_hours=6&deadline_hours=18
//
// Default mode is Server-Sent Events: the current plan table is pushed
// immediately, then one `plan` event per plan-table generation and
// periodic `heartbeat` events carrying the staleness flag. With
// ?mode=poll&gen=N the endpoint long-polls instead: it answers as soon
// as the shape's generation exceeds N (204 on timeout). Every response
// carries X-Plan-Generation; X-Quote-Stale: true flags a stalled feed,
// during which the last generation keeps serving.
//
// Reconnecting SSE clients resume with the standard Last-Event-ID
// header (the id: field of every frame carries the generation) or an
// explicit ?gen=N: events at or below that generation are suppressed,
// and announced generations are floored at it, so across a disconnect
// — even one that fails over to a backend whose evaluator is slightly
// behind — the client-visible generation sequence stays monotonic. A
// shape's generation is a deterministic function of the feed, so the
// floor only suppresses tables the client has already seen.
func registerStream(mux *http.ServeMux, st *Streamer) {
	mux.HandleFunc("GET /v1/quotes/stream", func(w http.ResponseWriter, r *http.Request) {
		req, err := ParseStreamRequest(r.URL.Query())
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		since, err := resumeFloor(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		sub, err := st.Subscribe(req)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrStreamCapacity) {
				code = http.StatusServiceUnavailable
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, code, err)
			return
		}
		defer sub.Close()
		if r.URL.Query().Get("mode") == "poll" {
			st.servePoll(w, r, sub, since)
			return
		}
		st.serveSSE(w, r, sub, since)
	})
}

// resumeFloor reads the client's resume generation: the SSE standard
// Last-Event-ID reconnect header when present (ignored if malformed —
// it is advisory), otherwise the explicit ?gen=N parameter (a 400 when
// malformed — the caller asked for something specific).
func resumeFloor(r *http.Request) (uint64, error) {
	if s := r.Header.Get("Last-Event-ID"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			return v, nil
		}
	}
	if s := r.URL.Query().Get("gen"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, invalidf("gen: %v", err)
		}
		return v, nil
	}
	return 0, nil
}

// serveSSE pushes plan events until the client disconnects. since is
// the resume floor: generations the client already holds.
func (st *Streamer) serveSSE(w http.ResponseWriter, r *http.Request, sub *StreamSub, since uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("quote: response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	snap := sub.Snapshot()
	gen := since
	if snap != nil && snap.Generation > gen {
		gen = snap.Generation
	}
	h.Set("X-Plan-Generation", strconv.FormatUint(gen, 10))
	stale := st.Stale()
	if stale {
		h.Set("X-Quote-Stale", "true")
	}
	w.WriteHeader(http.StatusOK)
	if snap != nil && snap.Generation > since {
		ev := *snap
		ev.Stale = stale
		writeSSE(w, "plan", &ev)
	}
	fl.Flush()
	hb := time.NewTicker(st.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub.Events():
			if ev.Generation <= since {
				continue // the client already holds this table
			}
			writeSSE(w, "plan", ev)
			fl.Flush()
			st.Metrics.ObservePush(time.Since(ev.born))
		case <-hb.C:
			// Heartbeats re-announce the last generation so a stalled
			// feed is visible (stale flag) without new computation; the
			// announcement is floored at the client's resume point so
			// generations never appear to regress across reconnects.
			g := st.Generation(sub)
			if g < since {
				g = since
			}
			writeSSE(w, "heartbeat", &StreamEvent{Generation: g, Stale: st.Stale()})
			fl.Flush()
		}
	}
}

// writeSSE frames one event (json.Marshal output has no raw newlines,
// so a single data: line suffices).
func writeSSE(w http.ResponseWriter, event string, ev *StreamEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Generation, event, data)
}

// servePoll answers one long-poll round: the newest event past the
// client's generation, or 204 after the timeout.
func (st *Streamer) servePoll(w http.ResponseWriter, r *http.Request, sub *StreamSub, since uint64) {
	q := r.URL.Query()
	timeout := defaultPollTimeout
	if s := q.Get("timeout_ms"); s != "" {
		ms, err := strconv.Atoi(s)
		if err != nil || ms <= 0 {
			writeError(w, http.StatusBadRequest, invalidf("timeout_ms must be a positive integer"))
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
		if timeout > maxPollTimeout {
			timeout = maxPollTimeout
		}
	}
	if ev := st.Latest(sub); ev != nil && ev.Generation > since {
		st.writePollEvent(w, ev)
		return
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub.Events():
			if ev.Generation <= since {
				continue
			}
			st.writePollEvent(w, ev)
			st.Metrics.ObservePush(time.Since(ev.born))
			return
		case <-timer.C:
			h := w.Header()
			h.Set("X-Plan-Generation", strconv.FormatUint(st.Generation(sub), 10))
			if st.Stale() {
				h.Set("X-Quote-Stale", "true")
			}
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
}

// writePollEvent sends one event as a plain JSON response.
func (st *Streamer) writePollEvent(w http.ResponseWriter, ev *StreamEvent) {
	body, err := json.Marshal(ev)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)+1))
	h.Set("X-Plan-Generation", strconv.FormatUint(ev.Generation, 10))
	if st.Stale() {
		h.Set("X-Quote-Stale", "true")
	}
	w.Write(body)
	w.Write([]byte("\n"))
}
