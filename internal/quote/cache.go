package quote

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity LRU of encoded response bodies. The
// service keys it by (history digest, canonical request), so entries
// never go stale — new history means a new digest, and the old entries
// simply age out.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// lruEntry is one cached body.
type lruEntry struct {
	key  string
	body []byte
}

// newLRU returns an empty cache holding at most capacity entries.
func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached body and marks it most recently used.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// add stores a body, evicting the least recently used entry when full.
func (c *lruCache) add(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
