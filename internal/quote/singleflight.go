package quote

import "sync"

// flightGroup coalesces concurrent computations for the same key: the
// first caller runs fn, later callers with the same in-flight key block
// and share the leader's result. A burst of identical cold-cache
// requests therefore costs one evaluation, not N.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	wg   sync.WaitGroup
	body []byte
	err  error
}

// do runs fn once per concurrent key, returning the shared result and
// whether this caller joined an existing flight instead of leading one.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.body, true, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.body, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.body, false, c.err
}
