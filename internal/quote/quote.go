// Package quote is the planning front-end of the repository: an HTTP
// JSON service that answers "I have W hours of work and a deadline D —
// what should I bid, in how many zones, under which checkpoint policy?"
// by replaying every (bid, zones, policy) permutation over recent spot
// price history on the core.Evaluator and serving the ranked plan
// table.
//
// The service is production-shaped: request validation, an LRU plan
// cache keyed by (history digest, request), singleflight coalescing of
// identical in-flight requests, bounded evaluation concurrency through
// a pool.Gate, and /metrics + /healthz endpoints. Because evaluation is
// deterministic (fixed estimation seed, order-preserving fan-out),
// identical requests over identical history return byte-identical
// bodies whether computed, coalesced or served from cache.
package quote

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"

	"repro/internal/market"
)

// Request defaults and limits. The caps keep a hostile request from
// turning one evaluation into an unbounded amount of work: work and
// window sizes bound the replay length, MaxZonesLimit bounds the
// permutation grid.
const (
	// DefaultOnDemandPrice is the paper's CC2 on-demand rate.
	DefaultOnDemandPrice = market.OnDemandRate
	// DefaultMaxZones is the paper's redundancy bound.
	DefaultMaxZones = 3
	// DefaultTop is the number of ranked plans returned.
	DefaultTop = 5
	// MaxWorkHours bounds the job size a quote may describe.
	MaxWorkHours = 24 * 365
	// MaxDeadlineHours bounds the deadline horizon.
	MaxDeadlineHours = 10 * 24 * 365
	// MaxHistoryWindowHours bounds the replayed history span.
	MaxHistoryWindowHours = 24 * 90
	// MaxZonesLimit bounds the requested redundancy degree.
	MaxZonesLimit = 8
	// MaxTop bounds the ranked plans returned.
	MaxTop = 100
	// MaxOnDemandPrice bounds the hourly on-demand rate.
	MaxOnDemandPrice = 1000
	// MaxBodyBytes bounds the accepted request body.
	MaxBodyBytes = 1 << 20
)

// Request is one planning question. HistoryWindowHours is required;
// zero-valued optional fields select the documented defaults.
type Request struct {
	// WorkHours is the uninterrupted computation time W in hours.
	WorkHours float64 `json:"work_hours"`
	// DeadlineHours is the completion budget D in hours; it must be at
	// least WorkHours or not even an immediate on-demand run finishes.
	DeadlineHours float64 `json:"deadline_hours"`
	// OnDemandPrice is the hourly on-demand fallback price in dollars;
	// 0 selects DefaultOnDemandPrice.
	OnDemandPrice float64 `json:"on_demand_price"`
	// HistoryWindowHours is how much trailing price history the
	// permutations are replayed over. It is required: an empty window
	// gives the evaluator nothing to measure.
	HistoryWindowHours float64 `json:"history_window"`
	// MaxZones bounds the redundancy degree N; 0 selects
	// DefaultMaxZones.
	MaxZones int `json:"max_zones,omitempty"`
	// Top is how many ranked plans the response carries (best +
	// alternatives); 0 selects DefaultTop.
	Top int `json:"top,omitempty"`
}

// DecodeRequest reads one JSON request from r, rejecting unknown
// fields, oversized bodies and trailing garbage.
func DecodeRequest(r io.Reader) (Request, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxBodyBytes))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	if dec.More() {
		return Request{}, fmt.Errorf("%w: trailing data after request object", ErrInvalidRequest)
	}
	return req, nil
}

// Normalize fills defaulted fields in place; call it before Validate.
func (r *Request) Normalize() {
	if r.OnDemandPrice == 0 {
		r.OnDemandPrice = DefaultOnDemandPrice
	}
	if r.MaxZones == 0 {
		r.MaxZones = DefaultMaxZones
	}
	if r.Top == 0 {
		r.Top = DefaultTop
	}
}

// ErrInvalidRequest marks client-side errors (malformed or
// out-of-range requests); the HTTP layer maps it to 400.
var ErrInvalidRequest = errors.New("quote: invalid request")

// ErrHistory marks history-source failures; the HTTP layer maps it to
// 502.
var ErrHistory = errors.New("quote: history source failed")

// invalidf builds an ErrInvalidRequest with detail.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidRequest, fmt.Sprintf(format, args...))
}

// Validate reports whether a normalized request is well-formed and
// within the service's limits.
func (r Request) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"work_hours", r.WorkHours},
		{"deadline_hours", r.DeadlineHours},
		{"on_demand_price", r.OnDemandPrice},
		{"history_window", r.HistoryWindowHours},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return invalidf("%s must be finite", f.name)
		}
	}
	if r.WorkHours <= 0 {
		return invalidf("work_hours must be positive, got %g", r.WorkHours)
	}
	if r.WorkHours > MaxWorkHours {
		return invalidf("work_hours %g exceeds limit %d", r.WorkHours, MaxWorkHours)
	}
	if r.DeadlineHours < r.WorkHours {
		return invalidf("deadline_hours %g is below work_hours %g: not schedulable even on-demand", r.DeadlineHours, r.WorkHours)
	}
	if r.DeadlineHours > MaxDeadlineHours {
		return invalidf("deadline_hours %g exceeds limit %d", r.DeadlineHours, MaxDeadlineHours)
	}
	if r.OnDemandPrice < 0 {
		return invalidf("on_demand_price must not be negative, got %g", r.OnDemandPrice)
	}
	if r.OnDemandPrice > MaxOnDemandPrice {
		return invalidf("on_demand_price %g exceeds limit %d", r.OnDemandPrice, MaxOnDemandPrice)
	}
	if r.HistoryWindowHours <= 0 {
		return invalidf("history_window must be positive, got %g", r.HistoryWindowHours)
	}
	if r.HistoryWindowHours > MaxHistoryWindowHours {
		return invalidf("history_window %g exceeds limit %d", r.HistoryWindowHours, MaxHistoryWindowHours)
	}
	if r.MaxZones < 0 || r.MaxZones > MaxZonesLimit {
		return invalidf("max_zones must be in [1, %d], got %d", MaxZonesLimit, r.MaxZones)
	}
	if r.Top < 0 || r.Top > MaxTop {
		return invalidf("top must be in [1, %d], got %d", MaxTop, r.Top)
	}
	return nil
}

// Key returns the canonical cache-key component of a normalized
// request: every field that influences the response body, in fixed
// order.
func (r Request) Key() string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return "w=" + g(r.WorkHours) +
		"|d=" + g(r.DeadlineHours) +
		"|od=" + g(r.OnDemandPrice) +
		"|h=" + g(r.HistoryWindowHours) +
		"|z=" + strconv.Itoa(r.MaxZones) +
		"|t=" + strconv.Itoa(r.Top)
}

// CacheKey is the canonical plan-cache key: the history digest joined
// with the normalized request's Key. It is the single definition both
// the service's LRU cache and any front-door router must share — a
// router that partitions traffic on a different key silently halves
// every backend cache.
func CacheKey(digest string, r Request) string {
	return digest + "|" + r.Key()
}

// AffinityKey hashes the normalized request's canonical Key with
// FNV-64a. A cluster router uses it to pin identical quote requests to
// one backend, so the backend's plan cache sees every repeat of a
// request shape; because it is derived from the same canonical Key that
// keys the cache, router affinity and cache identity agree by
// construction. The history digest is deliberately excluded: the router
// has no history, and all backends of one fleet serve the same feed.
func (r Request) AffinityKey() uint64 {
	h := fnv.New64a()
	io.WriteString(h, r.Key())
	return h.Sum64()
}

// Plan is one ranked (bid, zones, policy) permutation on the wire.
type Plan struct {
	// Bid is the spot bid in dollars per hour.
	Bid float64 `json:"bid"`
	// Zones are the availability zones the plan runs in.
	Zones []string `json:"zones"`
	// Policy is the checkpoint policy family.
	Policy string `json:"policy"`
	// PredictedCost is the predicted remaining cost in dollars.
	PredictedCost float64 `json:"predicted_cost_usd"`
	// CostRatePerHour is the measured spend rate over the history
	// window in dollars per hour.
	CostRatePerHour float64 `json:"cost_rate_usd_per_hour"`
	// ProgressRate is work-seconds completed per wall-clock second.
	ProgressRate float64 `json:"progress_rate"`
	// PredictedFinishHours is the predicted completion time in hours.
	PredictedFinishHours float64 `json:"predicted_finish_hours"`
	// DeadlineMarginHours is DeadlineHours − PredictedFinishHours.
	DeadlineMarginHours float64 `json:"deadline_margin_hours"`
}

// HistoryInfo describes the price history a quote was computed from.
type HistoryInfo struct {
	// Zones are the availability zones of the history.
	Zones []string `json:"zones"`
	// Samples is the number of price samples per zone.
	Samples int `json:"samples"`
	// WindowHours is the actual history span served (the requested
	// window clamped to what the source holds).
	WindowHours float64 `json:"window_hours"`
	// Digest identifies the exact samples; responses with equal digests
	// and equal requests are byte-identical.
	Digest string `json:"digest"`
}

// Response is the ranked plan table for one request.
type Response struct {
	// Best is the least-predicted-cost plan.
	Best Plan `json:"best"`
	// Alternatives are the runner-up plans, best-first.
	Alternatives []Plan `json:"alternatives"`
	// OnDemandCost is the reference cost of running the whole job
	// on-demand at the request's rate.
	OnDemandCost float64 `json:"on_demand_cost_usd"`
	// Evaluated counts the permutations replayed for this quote.
	Evaluated int `json:"evaluated_permutations"`
	// History describes the replayed price window.
	History HistoryInfo `json:"history"`
}
