package quote

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/spotapi"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{Threshold: 3, Cooldown: time.Minute, Now: func() time.Time { return now }}

	if allowed, _ := b.Allow(); !allowed {
		t.Fatal("closed breaker rejected a call")
	}
	// Two failures keep it closed; the third opens it.
	if b.Failure() || b.Failure() {
		t.Fatal("breaker opened before the threshold")
	}
	if !b.Failure() {
		t.Fatal("threshold failure did not open the breaker")
	}
	if !b.Degraded() {
		t.Fatal("open breaker not degraded")
	}
	if allowed, _ := b.Allow(); allowed {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(2 * time.Minute)
	allowed, probe := b.Allow()
	if !allowed || !probe {
		t.Fatalf("post-cooldown Allow = %v, %v; want probe", allowed, probe)
	}
	if allowed, _ := b.Allow(); allowed {
		t.Fatal("second caller admitted while the probe is in flight")
	}
	// The probe fails: re-open, full cooldown again.
	if !b.Failure() {
		t.Fatal("half-open failure did not re-open")
	}
	if allowed, _ := b.Allow(); allowed {
		t.Fatal("re-opened breaker admitted a call")
	}
	// Next probe succeeds: closed, and a success resets the count.
	now = now.Add(2 * time.Minute)
	if allowed, probe := b.Allow(); !allowed || !probe {
		t.Fatal("second probe not admitted")
	}
	b.Success()
	if b.Degraded() {
		t.Fatal("closed breaker reports degraded")
	}
	if b.Failure() {
		t.Fatal("failure count survived the success")
	}
}

// flakySource delegates to a working source until broken.
type flakySource struct {
	inner  HistorySource
	broken bool
}

func (f *flakySource) History(ctx context.Context, window int64) (*trace.Set, string, error) {
	if f.broken {
		return nil, "", errors.New("feed down")
	}
	return f.inner.History(ctx, window)
}

func TestStalePlansServeThroughOutage(t *testing.T) {
	src := &flakySource{inner: &StaticSource{Set: tracegen.HighVolatility(7)}}
	svc := &Service{Source: src, Breaker: &Breaker{Threshold: 2}}
	ctx := context.Background()

	good, st, err := svc.Quote(ctx, testRequest())
	if err != nil || st != StatusMiss {
		t.Fatalf("healthy quote = %v, %v", st, err)
	}

	src.broken = true
	// While the breaker counts failures the upstream is still tried and
	// each failure serves the last-known-good body.
	for i := 0; i < 2; i++ {
		body, st, err := svc.Quote(ctx, testRequest())
		if err != nil || st != StatusStale {
			t.Fatalf("outage quote %d = %v, %v", i, st, err)
		}
		if !bytes.Equal(body, good) {
			t.Fatalf("stale body diverges from the recorded plan")
		}
	}
	if svc.Stats().BreakerOpens.Load() != 1 {
		t.Fatalf("breaker opens = %d, want 1", svc.Stats().BreakerOpens.Load())
	}
	if !svc.Degraded() {
		t.Fatal("service not degraded after the breaker opened")
	}
	// Open breaker: the dead upstream is not touched, stale still served.
	body, st, err := svc.Quote(ctx, testRequest())
	if err != nil || st != StatusStale || !bytes.Equal(body, good) {
		t.Fatalf("fast-fail quote = %v, %v", st, err)
	}
	if svc.Stats().BreakerFastFails.Load() != 1 {
		t.Fatalf("fast fails = %d, want 1", svc.Stats().BreakerFastFails.Load())
	}
	if svc.Stats().StalePlans.Load() != 3 {
		t.Fatalf("stale plans = %d, want 3", svc.Stats().StalePlans.Load())
	}
	// HistoryErrors counts only the tries that reached the upstream.
	if svc.Stats().HistoryErrors.Load() != 2 {
		t.Fatalf("history errors = %d, want 2", svc.Stats().HistoryErrors.Load())
	}
}

func TestDegradedWithoutStalePlanErrors(t *testing.T) {
	svc := &Service{Source: failingSource{}, Breaker: &Breaker{Threshold: 1}}
	ctx := context.Background()
	// First failure reaches the upstream: surfaces as a history error.
	if _, _, err := svc.Quote(ctx, testRequest()); !errors.Is(err, ErrHistory) {
		t.Fatalf("err = %v, want ErrHistory", err)
	}
	// Breaker now open, nothing cached: ErrDegraded.
	if _, _, err := svc.Quote(ctx, testRequest()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
}

func TestHandlerDegradedMode(t *testing.T) {
	src := &flakySource{inner: &StaticSource{Set: tracegen.HighVolatility(7)}}
	svc := &Service{Source: src, Breaker: &Breaker{Threshold: 1}}
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	reqBody := `{"work_hours":4,"deadline_hours":8,"history_window":3,"max_zones":2}`

	post := func() *http.Response {
		resp, err := http.Post(ts.URL+"/v1/quote", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post()
	good, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Quote-Stale") != "" {
		t.Fatalf("healthy response: %s stale=%q", resp.Status, resp.Header.Get("X-Quote-Stale"))
	}

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy healthz: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}

	src.broken = true
	resp = post()
	stale, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale response status = %s, want 200", resp.Status)
	}
	if resp.Header.Get("X-Quote-Stale") != "true" || resp.Header.Get("X-Quote-Cache") != "stale" {
		t.Fatalf("stale headers = %q / %q", resp.Header.Get("X-Quote-Stale"), resp.Header.Get("X-Quote-Cache"))
	}
	if !bytes.Equal(stale, good) {
		t.Fatal("stale body diverges from the recorded plan")
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(hbody), "degraded") {
		t.Fatalf("degraded healthz = %s %q", hresp.Status, hbody)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"quoted_stale_plans_total 1",
		"quoted_breaker_opens_total 1",
		"quoted_breaker_half_opens_total",
		"quoted_breaker_fast_fails_total",
		"quoted_feed_stale_serves_total",
		"quoted_watchdog_trips_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestFeedSourceRetriesAndServesStale(t *testing.T) {
	set := tracegen.HighVolatility(7).Slice(0, 6*trace.Hour)
	epoch := time.Now().Add(-time.Duration(set.Duration()) * time.Second)
	// The first upstream request fails with an injected 503; the retry
	// schedule absorbs it.
	inner := spotapi.Handler(set, epoch)
	srv := httptest.NewServer(faults.Handler(inner,
		faults.Scenario{Plans: []faults.Plan{{At: 0, Kind: faults.HTTPError, Duration: 1}}}, nil))

	stats := NewMetrics()
	fs := &FeedSource{
		Client:   &spotapi.Client{BaseURL: srv.URL, HTTPClient: srv.Client()},
		TTL:      time.Nanosecond, // every History refetches
		Attempts: 3,
		Backoff:  faults.Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond, Jitter: -1},
		MaxStale: time.Nanosecond, // any stale serve also trips the watchdog
		Stats:    stats,
	}
	if _, _, err := fs.History(context.Background(), 3*trace.Hour); err != nil {
		t.Fatalf("History with one injected 503 = %v; retries should absorb it", err)
	}
	if stats.FeedStaleServes.Load() != 0 {
		t.Fatal("healthy fetch counted a stale serve")
	}

	// Upstream gone for good: the last fetched set is served, counted,
	// and — past MaxStale — watchdogged.
	srv.Close()
	set2, _, err := fs.History(context.Background(), 3*trace.Hour)
	if err != nil || set2 == nil {
		t.Fatalf("stale History = %v", err)
	}
	if stats.FeedStaleServes.Load() != 1 {
		t.Fatalf("feed stale serves = %d, want 1", stats.FeedStaleServes.Load())
	}
	if stats.WatchdogTrips.Load() != 1 {
		t.Fatalf("watchdog trips = %d, want 1", stats.WatchdogTrips.Load())
	}
}
