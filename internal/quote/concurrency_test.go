package quote

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/tracegen"
)

// TestConcurrentClients is the load acceptance bar run under the race
// detector: 200 concurrent clients fire a small mix of requests at a
// live HTTP server; every response must be 200 OK, and all responses
// for the same payload must be byte-identical regardless of whether
// they were computed, coalesced or cached.
func TestConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	svc := &Service{Source: &StaticSource{Set: tracegen.HighVolatility(7)}}
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	// Allow all clients to hold connections concurrently.
	ts.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = 256
	ts.Client().Transport.(*http.Transport).MaxConnsPerHost = 0

	payloads := []string{
		`{"work_hours":3,"deadline_hours":6,"history_window":3,"max_zones":2}`,
		`{"work_hours":4,"deadline_hours":8,"history_window":3,"max_zones":2}`,
		`{"work_hours":5,"deadline_hours":9,"history_window":3,"max_zones":2}`,
		`{"work_hours":6,"deadline_hours":12,"history_window":3,"max_zones":2}`,
	}
	const (
		clients   = 200
		perClient = 3
	)
	bodies := make([][][]byte, clients)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				payload := payloads[(c+i)%len(payloads)]
				resp, err := ts.Client().Post(ts.URL+"/v1/quote", "application/json", bytes.NewReader([]byte(payload)))
				if err != nil {
					errCh <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- &clientError{status: resp.Status, body: string(body)}
					return
				}
				bodies[c] = append(bodies[c], append([]byte("p"+payload[:20]+"|"), body...))
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Group by payload prefix and assert byte-identity within groups.
	byPayload := map[string][]byte{}
	for _, client := range bodies {
		for _, tagged := range client {
			sep := bytes.IndexByte(tagged, '|')
			key, body := string(tagged[:sep]), tagged[sep+1:]
			if prev, ok := byPayload[key]; ok {
				if !bytes.Equal(prev, body) {
					t.Fatalf("payload %q produced divergent bodies under concurrency", key)
				}
			} else {
				byPayload[key] = body
			}
		}
	}
	if len(byPayload) != len(payloads) {
		t.Fatalf("saw %d distinct payload groups, want %d", len(byPayload), len(payloads))
	}

	m := svc.Stats()
	total := int64(clients * perClient)
	if got := m.Requests.Load(); got != total {
		t.Fatalf("requests counter = %d, want %d", got, total)
	}
	if m.CacheMisses.Load()+m.CacheHits.Load() != total {
		t.Fatalf("cache lookups %d+%d do not cover %d requests",
			m.CacheHits.Load(), m.CacheMisses.Load(), total)
	}
	if m.EvalErrors.Load() != 0 || m.HistoryErrors.Load() != 0 || m.ValidationErrors.Load() != 0 {
		t.Fatalf("error counters non-zero: eval=%d history=%d validation=%d",
			m.EvalErrors.Load(), m.HistoryErrors.Load(), m.ValidationErrors.Load())
	}
	if m.InFlight.Load() != 0 {
		t.Fatalf("in-flight gauge = %d after drain", m.InFlight.Load())
	}
}

// clientError reports a non-200 response.
type clientError struct{ status, body string }

func (e *clientError) Error() string { return "quote request failed: " + e.status + ": " + e.body }
