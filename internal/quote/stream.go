package quote

import (
	"errors"
	"fmt"
	"math"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Streaming quotes: instead of answering each request by replaying the
// whole history window, the Streamer subscribes the service to the
// price feed and maintains one core.StreamEvaluator per distinct
// request shape — the ranked table updates in O(delta) per tick, and
// subscribers are pushed plan *changes* (generation + diff) over SSE or
// long-poll. The feed is the clock: when it stalls, nothing recomputes
// and the last published generation keeps serving — the stale-plan
// degraded mode is the streaming fast path, flagged per heartbeat
// rather than per recomputation.

// Streaming defaults and limits.
const (
	// DefaultStreamBacklog is how many trailing ticks the streamer
	// retains for catching up evaluators created by late subscribers.
	DefaultStreamBacklog = 2048
	// DefaultMaxShapes bounds the distinct request shapes (and thus
	// resident evaluators) one streamer maintains.
	DefaultMaxShapes = 64
	// DefaultStaleAfter is the wall-clock feed-stall threshold past
	// which pushed heartbeats and stream responses are flagged stale.
	DefaultStaleAfter = 90 * time.Second
	// DefaultHeartbeat is the SSE keepalive cadence.
	DefaultHeartbeat = 15 * time.Second
	// DefaultCheckpointEvery is the tick cadence of streamer
	// checkpoints when a snapshot Store is configured.
	DefaultCheckpointEvery = 64
)

// ErrStreamCapacity reports that the streamer is at its distinct-shape
// bound; the HTTP layer maps it to 503.
var ErrStreamCapacity = errors.New("quote: streaming capacity: too many distinct request shapes")

// StreamRequest is the request shape of one streaming subscription —
// a planning question minus the history window, which the feed itself
// supplies.
type StreamRequest struct {
	// WorkHours is the uninterrupted computation time W in hours.
	WorkHours float64
	// DeadlineHours is the completion budget D in hours.
	DeadlineHours float64
	// OnDemandPrice is the hourly on-demand fallback price; 0 selects
	// DefaultOnDemandPrice.
	OnDemandPrice float64
	// MaxZones bounds the redundancy degree; 0 selects DefaultMaxZones.
	MaxZones int
	// Top is how many ranked plans each pushed event carries; 0 selects
	// DefaultTop.
	Top int
}

// ParseStreamRequest reads a subscription shape from URL query
// parameters (work_hours and deadline_hours required; on_demand_price,
// max_zones, top optional).
func ParseStreamRequest(q url.Values) (StreamRequest, error) {
	var req StreamRequest
	f := func(name string, dst *float64) error {
		s := q.Get(name)
		if s == "" {
			return nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return invalidf("%s: %v", name, err)
		}
		*dst = v
		return nil
	}
	i := func(name string, dst *int) error {
		s := q.Get(name)
		if s == "" {
			return nil
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return invalidf("%s: %v", name, err)
		}
		*dst = v
		return nil
	}
	if err := f("work_hours", &req.WorkHours); err != nil {
		return req, err
	}
	if err := f("deadline_hours", &req.DeadlineHours); err != nil {
		return req, err
	}
	if err := f("on_demand_price", &req.OnDemandPrice); err != nil {
		return req, err
	}
	if err := i("max_zones", &req.MaxZones); err != nil {
		return req, err
	}
	if err := i("top", &req.Top); err != nil {
		return req, err
	}
	return req, nil
}

// Normalize fills defaulted fields in place; call it before Validate.
func (r *StreamRequest) Normalize() {
	if r.OnDemandPrice == 0 {
		r.OnDemandPrice = DefaultOnDemandPrice
	}
	if r.MaxZones == 0 {
		r.MaxZones = DefaultMaxZones
	}
	if r.Top == 0 {
		r.Top = DefaultTop
	}
}

// Validate reports whether a normalized subscription shape is
// well-formed, under the same bounds as one-shot quote requests.
func (r StreamRequest) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"work_hours", r.WorkHours},
		{"deadline_hours", r.DeadlineHours},
		{"on_demand_price", r.OnDemandPrice},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return invalidf("%s must be finite", f.name)
		}
	}
	if r.WorkHours <= 0 {
		return invalidf("work_hours must be positive, got %g", r.WorkHours)
	}
	if r.WorkHours > MaxWorkHours {
		return invalidf("work_hours %g exceeds limit %d", r.WorkHours, MaxWorkHours)
	}
	if r.DeadlineHours < r.WorkHours {
		return invalidf("deadline_hours %g is below work_hours %g: not schedulable even on-demand", r.DeadlineHours, r.WorkHours)
	}
	if r.DeadlineHours > MaxDeadlineHours {
		return invalidf("deadline_hours %g exceeds limit %d", r.DeadlineHours, MaxDeadlineHours)
	}
	if r.OnDemandPrice < 0 {
		return invalidf("on_demand_price must not be negative, got %g", r.OnDemandPrice)
	}
	if r.OnDemandPrice > MaxOnDemandPrice {
		return invalidf("on_demand_price %g exceeds limit %d", r.OnDemandPrice, MaxOnDemandPrice)
	}
	if r.MaxZones < 0 || r.MaxZones > MaxZonesLimit {
		return invalidf("max_zones must be in [1, %d], got %d", MaxZonesLimit, r.MaxZones)
	}
	if r.Top < 0 || r.Top > MaxTop {
		return invalidf("top must be in [1, %d], got %d", MaxTop, r.Top)
	}
	return nil
}

// Key returns the canonical shape key: every field that influences
// pushed events, in fixed order. Shapes with equal keys share one
// resident evaluator.
func (r StreamRequest) Key() string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return "w=" + g(r.WorkHours) +
		"|d=" + g(r.DeadlineHours) +
		"|od=" + g(r.OnDemandPrice) +
		"|z=" + strconv.Itoa(r.MaxZones) +
		"|t=" + strconv.Itoa(r.Top)
}

// StreamEvent is one pushed plan change on the wire.
type StreamEvent struct {
	// Generation is the shape's monotonic plan-table generation.
	Generation uint64 `json:"generation"`
	// Tick is the feed tick (1-based) that produced the change.
	Tick uint64 `json:"tick"`
	// At is the absolute time of the tick's price sample, in seconds.
	At int64 `json:"at"`
	// BestChanged reports whether rank 0 changed.
	BestChanged bool `json:"best_changed"`
	// ChangedRanks counts table positions whose plan changed.
	ChangedRanks int `json:"changed_ranks"`
	// Evaluated counts the permutations the table ranks.
	Evaluated int `json:"evaluated_permutations"`
	// Stale flags events emitted while the feed is stalled (heartbeats
	// re-announcing the last generation).
	Stale bool `json:"stale,omitempty"`
	// Best is the current least-predicted-cost plan.
	Best *Plan `json:"best,omitempty"`
	// Alternatives are the runner-up plans, best-first.
	Alternatives []Plan `json:"alternatives,omitempty"`

	born time.Time // when the tick published it, for push-latency metrics
}

// StreamMetrics aggregates the streaming pipeline's counters. It is
// appended to a Metrics' registry by AttachStream — never registered by
// NewMetrics, whose exposition a golden test pins byte-for-byte.
type StreamMetrics struct {
	// Ticks counts feed ticks applied (including gap fills).
	Ticks obs.Counter
	// DupTicks counts duplicate-sequence ticks dropped.
	DupTicks obs.Counter
	// GapFills counts missing ticks synthesized by repeating the last
	// row (spot prices are step functions; a silent feed means the
	// price held).
	GapFills obs.Counter
	// TickErrors counts per-shape tick application failures.
	TickErrors obs.Counter
	// Generations counts plan-table generations published across all
	// shapes.
	Generations obs.Counter
	// CrossCheckMismatches counts streaming cross-check divergences
	// (see core.StreamStats) across all shapes.
	CrossCheckMismatches obs.Counter
	// Subscribers gauges live stream subscriptions.
	Subscribers obs.Gauge
	// ShapeRejects counts subscriptions refused at the shape bound.
	ShapeRejects obs.Counter
	// Checkpoints counts snapshots written to the snapshot store.
	Checkpoints obs.Counter
	// CheckpointErrors counts snapshot-store writes that failed (the
	// stream keeps serving; the previous checkpoint stands).
	CheckpointErrors obs.Counter
	// Restores counts successful crash-recovery restores.
	Restores obs.Counter

	push *obs.Histogram // publish-to-write plan-push latency
}

// AttachStream registers the streaming metrics onto the service
// registry and returns them. Call at most once per Metrics.
func (m *Metrics) AttachStream() *StreamMetrics {
	sm := &StreamMetrics{push: obs.NewHistogram(nil)}
	m.reg.Counter("quoted_stream_ticks_total", &sm.Ticks)
	m.reg.Counter("quoted_stream_dup_ticks_total", &sm.DupTicks)
	m.reg.Counter("quoted_stream_gap_fills_total", &sm.GapFills)
	m.reg.Counter("quoted_stream_tick_errors_total", &sm.TickErrors)
	m.reg.Counter("quoted_stream_generations_total", &sm.Generations)
	m.reg.Counter("quoted_stream_crosscheck_mismatches_total", &sm.CrossCheckMismatches)
	m.reg.Gauge("quoted_stream_subscribers", &sm.Subscribers)
	m.reg.Counter("quoted_stream_shape_rejects_total", &sm.ShapeRejects)
	m.reg.Counter("quoted_stream_checkpoints_total", &sm.Checkpoints)
	m.reg.Counter("quoted_stream_checkpoint_errors_total", &sm.CheckpointErrors)
	m.reg.Counter("quoted_stream_restores_total", &sm.Restores)
	m.reg.Histogram("quoted_latency_seconds", "stage", "plan_push", metricQuantiles, sm.push)
	return sm
}

// ObservePush records one publish-to-client-write latency.
func (sm *StreamMetrics) ObservePush(d time.Duration) {
	sm.push.Observe(d.Seconds())
}

// PushLatencyQuantile returns the observed plan-push latency quantile
// in seconds (publish to client write).
func (sm *StreamMetrics) PushLatencyQuantile(q float64) float64 {
	return sm.push.Quantile(q)
}

// streamShape is one request shape's resident state: its incremental
// evaluator, its latest published event and its subscribers.
type streamShape struct {
	req  StreamRequest
	se   *core.StreamEvaluator
	last *StreamEvent
	subs map[*StreamSub]struct{}

	mismatches int64 // cross-check mismatches already exported
}

// StreamSub is one subscription: a latest-wins event slot the tick
// pipeline publishes into. Slow consumers never block a tick — they
// coalesce to the newest event.
type StreamSub struct {
	st       *Streamer
	shape    *streamShape
	snapshot *StreamEvent // table state at subscribe time, if any
	ch       chan *StreamEvent
	closed   bool
}

// Events returns the subscription's event channel; each receive yields
// the newest unseen plan change.
func (s *StreamSub) Events() <-chan *StreamEvent { return s.ch }

// Snapshot returns the shape's latest event as of subscribe time (nil
// before the feed's first table).
func (s *StreamSub) Snapshot() *StreamEvent { return s.snapshot }

// Close ends the subscription; the last subscriber of a shape releases
// its resident evaluator.
func (s *StreamSub) Close() { s.st.unsubscribe(s) }

// offer publishes latest-wins into the slot. Called with the streamer
// lock held, so this goroutine is the only sender and the post-drain
// send cannot block.
func (s *StreamSub) offer(ev *StreamEvent) {
	for {
		select {
		case s.ch <- ev:
			return
		default:
			select {
			case <-s.ch:
			default:
			}
		}
	}
}

// Streamer is the subscription manager: it ingests the price feed once
// and fans plan changes out to every subscriber of every request
// shape. Fields are read at first use and must not change afterwards;
// the zero value plus Zones is ready. Safe for concurrent use.
type Streamer struct {
	// Eval supplies tracing and cross-check ranking for the resident
	// evaluators; nil selects a fresh default.
	Eval *core.Evaluator
	// Metrics receives the streaming counters; nil selects a private
	// instance.
	Metrics *StreamMetrics
	// Zones names the feed's zones in tick column order.
	Zones []string
	// Start is the absolute time of feed sequence 1's sample.
	Start int64
	// Step is the feed's tick interval in seconds; 0 selects
	// trace.DefaultStep.
	Step int64
	// Backlog bounds the retained catch-up ticks; 0 selects
	// DefaultStreamBacklog.
	Backlog int
	// MaxShapes bounds distinct request shapes; 0 selects
	// DefaultMaxShapes.
	MaxShapes int
	// StaleAfter is the feed-stall threshold; 0 selects
	// DefaultStaleAfter.
	StaleAfter time.Duration
	// CrossCheckEvery and MaxSteps pass through to every resident
	// evaluator (see core.StreamConfig).
	CrossCheckEvery int
	MaxSteps        int
	// Heartbeat is the SSE keepalive cadence; 0 selects
	// DefaultHeartbeat.
	Heartbeat time.Duration
	// Store, when set, receives a crash-recovery checkpoint every
	// CheckpointEvery feed sequence numbers (see snapshot.go).
	Store SnapshotStore
	// CheckpointEvery is the checkpoint cadence in feed sequence
	// numbers; 0 selects DefaultCheckpointEvery.
	CheckpointEvery int

	once    sync.Once
	mu      sync.Mutex
	shapes  map[string]*streamShape
	backlog [][]float64
	dropped uint64 // backlog rows discarded by trimming, ever
	seq     uint64
	lastRow []float64
	lastAt  time.Time
}

// init lazily fills defaults.
func (st *Streamer) init() {
	st.once.Do(func() {
		if st.Eval == nil {
			st.Eval = core.NewEvaluator()
		}
		if st.Metrics == nil {
			st.Metrics = NewMetrics().AttachStream()
		}
		if st.Step == 0 {
			st.Step = trace.DefaultStep
		}
		if st.Backlog <= 0 {
			st.Backlog = DefaultStreamBacklog
		}
		if st.MaxShapes <= 0 {
			st.MaxShapes = DefaultMaxShapes
		}
		if st.StaleAfter <= 0 {
			st.StaleAfter = DefaultStaleAfter
		}
		if st.Heartbeat <= 0 {
			st.Heartbeat = DefaultHeartbeat
		}
		if st.CheckpointEvery <= 0 {
			st.CheckpointEvery = DefaultCheckpointEvery
		}
		st.shapes = make(map[string]*streamShape)
	})
}

// Stale reports whether the feed has stalled: no tick yet, or none
// within StaleAfter. Stream responses and heartbeats surface it; the
// last published generation keeps serving regardless.
func (st *Streamer) Stale() bool {
	st.init()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.staleLocked()
}

func (st *Streamer) staleLocked() bool {
	return st.lastAt.IsZero() || time.Since(st.lastAt) > st.StaleAfter
}

// Ingest applies one feed tick: seq is the feed's 1-based sequence
// number, prices one sample per zone in column order. Duplicate and
// reordered sequences are dropped; gaps are filled by repeating the
// last row (a silent feed means the price held — spot prices are step
// functions), so every resident evaluator sees exactly one row per
// sequence number and stays deterministic under feed chaos.
func (st *Streamer) Ingest(seq uint64, prices []float64) error {
	st.init()
	if len(prices) != len(st.Zones) {
		return fmt.Errorf("quote: stream tick has %d prices for %d zones", len(prices), len(st.Zones))
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.seq != 0 && seq <= st.seq {
		st.Metrics.DupTicks.Inc()
		return nil
	}
	if st.seq != 0 && seq > st.seq+1 {
		for g := st.seq + 1; g < seq; g++ {
			st.Metrics.GapFills.Inc()
			st.tickLocked(st.lastRow)
		}
	}
	st.seq = seq
	st.lastRow = append(st.lastRow[:0], prices...)
	st.lastAt = time.Now()
	st.tickLocked(st.lastRow)
	if st.Store != nil && seq%uint64(st.CheckpointEvery) == 0 {
		st.checkpointLocked()
	}
	return nil
}

// tickLocked applies one row to the backlog and every resident shape.
func (st *Streamer) tickLocked(row []float64) {
	st.Metrics.Ticks.Inc()
	st.backlog = append(st.backlog, append([]float64(nil), row...))
	if len(st.backlog) > 2*st.Backlog {
		drop := len(st.backlog) - st.Backlog
		st.backlog = append(st.backlog[:0:0], st.backlog[drop:]...)
		st.dropped += uint64(drop)
	}
	for _, sh := range st.shapes {
		st.advanceLocked(sh, row)
	}
}

// advanceLocked ticks one shape's evaluator and publishes a change.
func (st *Streamer) advanceLocked(sh *streamShape, row []float64) {
	upd, err := sh.se.Advance(row)
	if err != nil {
		st.Metrics.TickErrors.Inc()
		return
	}
	if mm := sh.se.Stats().CrossCheckMismatches; mm > sh.mismatches {
		st.Metrics.CrossCheckMismatches.Add(mm - sh.mismatches)
		sh.mismatches = mm
	}
	if !upd.Changed {
		return
	}
	st.Metrics.Generations.Inc()
	ev := sh.event(&upd, false)
	sh.last = ev
	for sub := range sh.subs {
		sub.offer(ev)
	}
}

// event converts one evaluator update into the shape's wire event,
// truncated to the shape's Top.
func (sh *streamShape) event(upd *core.StreamUpdate, stale bool) *StreamEvent {
	top := sh.req.Top
	if top > len(upd.Plans) {
		top = len(upd.Plans)
	}
	wire := make([]Plan, top)
	for i := 0; i < top; i++ {
		wire[i] = toWire(upd.Plans[i])
	}
	ev := &StreamEvent{
		Generation:   upd.Generation,
		Tick:         upd.Tick,
		At:           upd.At,
		BestChanged:  upd.BestChanged,
		ChangedRanks: upd.ChangedRanks,
		Evaluated:    len(upd.Plans),
		Stale:        stale,
		born:         time.Now(),
	}
	if len(wire) > 0 {
		ev.Best = &wire[0]
		ev.Alternatives = wire[1:]
	}
	return ev
}

// streamConfigLocked is the core evaluator shape of one subscription
// request — shared by Subscribe and crash-recovery Restore so restored
// evaluators resolve identically to freshly subscribed ones.
func (st *Streamer) streamConfigLocked(req StreamRequest) core.StreamConfig {
	return core.StreamConfig{
		Zones:           st.Zones,
		Start:           st.Start + int64(st.dropped)*st.Step,
		Step:            st.Step,
		Work:            int64(math.Round(req.WorkHours * float64(trace.Hour))),
		Deadline:        int64(math.Round(req.DeadlineHours * float64(trace.Hour))),
		CheckpointCost:  core.DefaultCheckpointCost,
		RestartCost:     core.DefaultCheckpointCost,
		OnDemandRate:    req.OnDemandPrice,
		MaxZones:        req.MaxZones,
		CrossCheckEvery: st.CrossCheckEvery,
		MaxSteps:        st.MaxSteps,
	}
}

// Subscribe registers for a shape's plan changes, creating (and
// catching up, over the retained backlog) its resident evaluator on
// first use. The returned subscription carries the shape's current
// table as a snapshot.
func (st *Streamer) Subscribe(req StreamRequest) (*StreamSub, error) {
	st.init()
	req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	key := req.Key()
	sh := st.shapes[key]
	if sh == nil {
		if len(st.shapes) >= st.MaxShapes {
			st.Metrics.ShapeRejects.Inc()
			return nil, ErrStreamCapacity
		}
		se, err := core.NewStreamEvaluator(st.Eval, st.streamConfigLocked(req))
		if err != nil {
			return nil, err
		}
		sh = &streamShape{req: req, se: se, subs: make(map[*StreamSub]struct{})}
		var last core.StreamUpdate
		for _, row := range st.backlog {
			upd, err := se.Advance(row)
			if err != nil {
				st.Metrics.TickErrors.Inc()
				break
			}
			last = upd
		}
		if last.Generation > 0 {
			sh.last = sh.event(&last, false)
		}
		st.shapes[key] = sh
	}
	sub := &StreamSub{st: st, shape: sh, snapshot: sh.last, ch: make(chan *StreamEvent, 1)}
	sh.subs[sub] = struct{}{}
	st.Metrics.Subscribers.Add(1)
	return sub, nil
}

// unsubscribe removes the subscription; the shape's resident evaluator
// is released with its last subscriber.
func (st *Streamer) unsubscribe(sub *StreamSub) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	delete(sub.shape.subs, sub)
	st.Metrics.Subscribers.Add(-1)
	if len(sub.shape.subs) == 0 {
		delete(st.shapes, sub.shape.req.Key())
	}
}

// Generation returns a subscription shape's current plan generation
// (0 before the first table).
func (st *Streamer) Generation(sub *StreamSub) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if sub.shape.last == nil {
		return 0
	}
	return sub.shape.last.Generation
}

// Latest returns the subscription shape's newest published event (nil
// before the first table).
func (st *Streamer) Latest(sub *StreamSub) *StreamEvent {
	st.mu.Lock()
	defer st.mu.Unlock()
	return sub.shape.last
}
