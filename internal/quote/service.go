package quote

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/trace"
)

// CacheStatus says how a quote was served.
type CacheStatus string

// Cache statuses, surfaced in the X-Quote-Cache response header (never
// in the body, which stays byte-identical across hit and miss).
const (
	// StatusMiss: the quote was computed by this request.
	StatusMiss CacheStatus = "miss"
	// StatusHit: the quote was served from the plan cache.
	StatusHit CacheStatus = "hit"
	// StatusCoalesced: the quote joined an identical in-flight
	// computation.
	StatusCoalesced CacheStatus = "coalesced"
)

// Service computes ranked execution plans over a history source. Fields
// are read at first use and must not change afterwards; the zero value
// plus a Source is ready. A Service is safe for concurrent use.
type Service struct {
	// Source supplies the trailing price history.
	Source HistorySource
	// Eval is the evaluation core; nil selects core.NewEvaluator().
	Eval *core.Evaluator
	// Gate bounds concurrent evaluations; nil selects
	// pool.NewGate(0) (2×GOMAXPROCS).
	Gate *pool.Gate
	// CacheSize bounds the plan cache entries; 0 selects 1024.
	CacheSize int
	// Metrics receives counters and latencies; nil selects a private
	// instance (retrievable via Stats).
	Metrics *Metrics

	once    sync.Once
	cache   *lruCache
	flights flightGroup
}

// init lazily fills defaults; callers hold no lock, sync.Once
// serialises.
func (s *Service) init() {
	s.once.Do(func() {
		if s.Eval == nil {
			s.Eval = core.NewEvaluator()
		}
		if s.Gate == nil {
			s.Gate = pool.NewGate(0)
		}
		if s.CacheSize <= 0 {
			s.CacheSize = 1024
		}
		if s.Metrics == nil {
			s.Metrics = NewMetrics()
		}
		s.cache = newLRU(s.CacheSize)
	})
}

// Stats returns the service's metrics sink (allocating it on first
// use).
func (s *Service) Stats() *Metrics {
	s.init()
	return s.Metrics
}

// Quote answers one planning request: it normalizes and validates req,
// pulls the trailing history window from the source, and returns the
// encoded Response body together with how it was served. Identical
// requests over identical history return byte-identical bodies.
func (s *Service) Quote(ctx context.Context, req Request) ([]byte, CacheStatus, error) {
	s.init()
	start := time.Now()
	s.Metrics.Requests.Add(1)
	s.Metrics.InFlight.Add(1)
	defer s.Metrics.InFlight.Add(-1)

	req.Normalize()
	if err := req.Validate(); err != nil {
		s.Metrics.ValidationErrors.Add(1)
		return nil, "", err
	}

	window := int64(math.Round(req.HistoryWindowHours * float64(trace.Hour)))
	histStart := time.Now()
	hist, digest, err := s.Source.History(ctx, window)
	s.Metrics.history.observe(time.Since(histStart).Seconds())
	if err != nil {
		s.Metrics.HistoryErrors.Add(1)
		return nil, "", fmt.Errorf("%w: %v", ErrHistory, err)
	}

	key := digest + "|" + req.Key()
	if body, ok := s.cache.get(key); ok {
		s.Metrics.CacheHits.Add(1)
		s.Metrics.total.observe(time.Since(start).Seconds())
		return body, StatusHit, nil
	}
	s.Metrics.CacheMisses.Add(1)

	body, shared, err := s.flights.do(key, func() ([]byte, error) {
		if err := s.Gate.Acquire(ctx); err != nil {
			return nil, err
		}
		defer s.Gate.Release()
		evalStart := time.Now()
		resp, err := s.compute(req, hist, digest)
		s.Metrics.eval.observe(time.Since(evalStart).Seconds())
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		body = append(body, '\n')
		s.cache.add(key, body)
		return body, nil
	})
	if err != nil {
		s.Metrics.EvalErrors.Add(1)
		return nil, "", err
	}
	status := StatusMiss
	if shared {
		status = StatusCoalesced
		s.Metrics.Coalesced.Add(1)
	}
	s.Metrics.total.observe(time.Since(start).Seconds())
	return body, status, nil
}

// compute ranks the permutations and assembles the response.
func (s *Service) compute(req Request, hist *trace.Set, digest string) (*Response, error) {
	plans, err := s.Eval.Rank(core.PlanRequest{
		History:        hist,
		Work:           int64(math.Round(req.WorkHours * float64(trace.Hour))),
		Deadline:       int64(math.Round(req.DeadlineHours * float64(trace.Hour))),
		CheckpointCost: core.DefaultCheckpointCost,
		RestartCost:    core.DefaultCheckpointCost,
		OnDemandRate:   req.OnDemandPrice,
		MaxZones:       req.MaxZones,
	})
	if err != nil {
		return nil, err
	}
	top := req.Top
	if top > len(plans) {
		top = len(plans)
	}
	wire := make([]Plan, top)
	for i := 0; i < top; i++ {
		wire[i] = toWire(plans[i])
	}
	resp := &Response{
		Best:         wire[0],
		Alternatives: wire[1:],
		OnDemandCost: math.Ceil(req.WorkHours) * req.OnDemandPrice,
		Evaluated:    len(plans),
		History: HistoryInfo{
			Zones:       hist.Zones(),
			Samples:     hist.Series[0].Len(),
			WindowHours: float64(hist.Duration()) / float64(trace.Hour),
			Digest:      digest,
		},
	}
	return resp, nil
}

// toWire converts a core plan to the wire format, expressing times in
// hours.
func toWire(p core.Plan) Plan {
	return Plan{
		Bid:                  p.Bid,
		Zones:                p.Zones,
		Policy:               p.Policy,
		PredictedCost:        p.PredictedCost,
		CostRatePerHour:      p.CostRate,
		ProgressRate:         p.ProgressRate,
		PredictedFinishHours: float64(p.PredictedFinish) / float64(trace.Hour),
		DeadlineMarginHours:  float64(p.DeadlineMargin) / float64(trace.Hour),
	}
}
