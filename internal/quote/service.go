package quote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/trace"
)

// CacheStatus says how a quote was served.
type CacheStatus string

// Cache statuses, surfaced in the X-Quote-Cache response header (never
// in the body, which stays byte-identical across hit and miss).
const (
	// StatusMiss: the quote was computed by this request.
	StatusMiss CacheStatus = "miss"
	// StatusHit: the quote was served from the plan cache.
	StatusHit CacheStatus = "hit"
	// StatusCoalesced: the quote joined an identical in-flight
	// computation.
	StatusCoalesced CacheStatus = "coalesced"
	// StatusStale: live history was unavailable and the quote was
	// served from the last-known-good store. The HTTP layer flags it
	// with X-Quote-Stale: true.
	StatusStale CacheStatus = "stale"
)

// ErrDegraded reports that the history source is unavailable and no
// last-known-good plan exists for the request; the HTTP layer maps it
// to 503.
var ErrDegraded = errors.New("quote: degraded: history source unavailable and no stale plan cached")

// ErrOverloaded reports that the evaluation gate is saturated and the
// admission queue full; the HTTP layer maps it to 429 with Retry-After
// so well-behaved clients (and the cluster router's retry budget) back
// off instead of deepening the queue.
var ErrOverloaded = errors.New("quote: overloaded: evaluation queue full")

// Service computes ranked execution plans over a history source. Fields
// are read at first use and must not change afterwards; the zero value
// plus a Source is ready. A Service is safe for concurrent use.
type Service struct {
	// Source supplies the trailing price history.
	Source HistorySource
	// Eval is the evaluation core; nil selects core.NewEvaluator().
	Eval *core.Evaluator
	// Gate bounds concurrent evaluations; nil selects
	// pool.NewGate(0) (2×GOMAXPROCS).
	Gate *pool.Gate
	// CacheSize bounds the plan cache entries; 0 selects 1024.
	CacheSize int
	// Metrics receives counters and latencies; nil selects a private
	// instance (retrievable via Stats).
	Metrics *Metrics
	// Breaker guards the history source; nil selects a default
	// Breaker. When it opens, requests skip the dead upstream and are
	// answered from the last-known-good store.
	Breaker *Breaker
	// MaxQueue bounds how many evaluations may wait on a saturated
	// Gate before further ones are refused with ErrOverloaded (HTTP
	// 429). 0 keeps the historical behavior: wait without bound.
	MaxQueue int

	once    sync.Once
	cache   *lruCache
	stale   *lruCache // last-known-good bodies keyed by request only
	flights flightGroup
	waiters atomic.Int64 // evaluations blocked on the gate
}

// init lazily fills defaults; callers hold no lock, sync.Once
// serialises.
func (s *Service) init() {
	s.once.Do(func() {
		if s.Eval == nil {
			s.Eval = core.NewEvaluator()
		}
		if s.Gate == nil {
			s.Gate = pool.NewGate(0)
		}
		if s.CacheSize <= 0 {
			s.CacheSize = 1024
		}
		if s.Metrics == nil {
			s.Metrics = NewMetrics()
		}
		if s.Breaker == nil {
			s.Breaker = &Breaker{}
		}
		s.cache = newLRU(s.CacheSize)
		s.stale = newLRU(s.CacheSize)
	})
}

// Degraded reports whether the service is running in degraded mode
// (history-source breaker open or half-open); /healthz surfaces it.
func (s *Service) Degraded() bool {
	s.init()
	return s.Breaker.Degraded()
}

// Stats returns the service's metrics sink (allocating it on first
// use).
func (s *Service) Stats() *Metrics {
	s.init()
	return s.Metrics
}

// Quote answers one planning request: it normalizes and validates req,
// pulls the trailing history window from the source, and returns the
// encoded Response body together with how it was served. Identical
// requests over identical history return byte-identical bodies.
func (s *Service) Quote(ctx context.Context, req Request) ([]byte, CacheStatus, error) {
	s.init()
	start := time.Now()
	s.Metrics.Requests.Add(1)
	s.Metrics.InFlight.Add(1)
	defer s.Metrics.InFlight.Add(-1)

	req.Normalize()
	if err := req.Validate(); err != nil {
		s.Metrics.ValidationErrors.Add(1)
		return nil, "", err
	}

	allowed, probe := s.Breaker.Allow()
	if !allowed {
		// Open circuit: don't touch the dead upstream; degrade to the
		// last-known-good plan for this request shape, if any.
		s.Metrics.BreakerFastFails.Add(1)
		return s.serveStale(req, nil)
	}
	if probe {
		s.Metrics.BreakerHalfOpens.Add(1)
	}

	span := obs.FromContext(ctx)
	window := int64(math.Round(req.HistoryWindowHours * float64(trace.Hour)))
	histStart := time.Now()
	hsp := span.Child("quote.history")
	hist, digest, err := s.Source.History(ctx, window)
	hsp.End()
	s.Metrics.history.Observe(time.Since(histStart).Seconds())
	if err != nil {
		s.Metrics.HistoryErrors.Add(1)
		if s.Breaker.Failure() {
			s.Metrics.BreakerOpens.Add(1)
		}
		return s.serveStale(req, fmt.Errorf("%w: %v", ErrHistory, err))
	}
	s.Breaker.Success()

	key := CacheKey(digest, req)
	if body, ok := s.cache.get(key); ok {
		s.Metrics.CacheHits.Add(1)
		s.stale.add(req.Key(), body)
		s.Metrics.total.Observe(time.Since(start).Seconds())
		return body, StatusHit, nil
	}
	s.Metrics.CacheMisses.Add(1)

	body, shared, err := s.flights.do(key, func() ([]byte, error) {
		if err := s.acquireGate(ctx); err != nil {
			return nil, err
		}
		defer s.Gate.Release()
		evalStart := time.Now()
		esp := span.Child("quote.eval")
		resp, err := s.compute(req, hist, digest)
		esp.End()
		s.Metrics.eval.Observe(time.Since(evalStart).Seconds())
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		body = append(body, '\n')
		s.cache.add(key, body)
		return body, nil
	})
	if err != nil {
		s.Metrics.EvalErrors.Add(1)
		return nil, "", err
	}
	status := StatusMiss
	if shared {
		status = StatusCoalesced
		s.Metrics.Coalesced.Add(1)
	}
	s.stale.add(req.Key(), body)
	s.Metrics.total.Observe(time.Since(start).Seconds())
	return body, status, nil
}

// acquireGate admits one evaluation: immediately when the gate has a
// slot, by waiting when the queue is shallow, with ErrOverloaded when
// MaxQueue evaluations already wait. The waiter count is advisory — a
// racing admission may briefly exceed the bound by one — which is fine
// for load shedding; the gate itself stays the hard concurrency limit.
func (s *Service) acquireGate(ctx context.Context) error {
	if s.Gate.TryAcquire() {
		return nil
	}
	if s.MaxQueue > 0 && s.waiters.Load() >= int64(s.MaxQueue) {
		return ErrOverloaded
	}
	s.waiters.Add(1)
	defer s.waiters.Add(-1)
	return s.Gate.Acquire(ctx)
}

// serveStale answers a request from the last-known-good store when live
// history is unavailable. cause is the upstream error to surface when
// no stale body exists (nil selects ErrDegraded); a served stale body
// is byte-identical to the response it was recorded from.
func (s *Service) serveStale(req Request, cause error) ([]byte, CacheStatus, error) {
	if body, ok := s.stale.get(req.Key()); ok {
		s.Metrics.StalePlans.Add(1)
		return body, StatusStale, nil
	}
	if cause == nil {
		cause = ErrDegraded
	}
	return nil, "", cause
}

// compute ranks the permutations and assembles the response.
func (s *Service) compute(req Request, hist *trace.Set, digest string) (*Response, error) {
	plans, err := s.Eval.Rank(core.PlanRequest{
		History:        hist,
		Work:           int64(math.Round(req.WorkHours * float64(trace.Hour))),
		Deadline:       int64(math.Round(req.DeadlineHours * float64(trace.Hour))),
		CheckpointCost: core.DefaultCheckpointCost,
		RestartCost:    core.DefaultCheckpointCost,
		OnDemandRate:   req.OnDemandPrice,
		MaxZones:       req.MaxZones,
	})
	if err != nil {
		return nil, err
	}
	top := req.Top
	if top > len(plans) {
		top = len(plans)
	}
	wire := make([]Plan, top)
	for i := 0; i < top; i++ {
		wire[i] = toWire(plans[i])
	}
	resp := &Response{
		Best:         wire[0],
		Alternatives: wire[1:],
		OnDemandCost: math.Ceil(req.WorkHours) * req.OnDemandPrice,
		Evaluated:    len(plans),
		History: HistoryInfo{
			Zones:       hist.Zones(),
			Samples:     hist.Series[0].Len(),
			WindowHours: float64(hist.Duration()) / float64(trace.Hour),
			Digest:      digest,
		},
	}
	return resp, nil
}

// toWire converts a core plan to the wire format, expressing times in
// hours.
func toWire(p core.Plan) Plan {
	return Plan{
		Bid:                  p.Bid,
		Zones:                p.Zones,
		Policy:               p.Policy,
		PredictedCost:        p.PredictedCost,
		CostRatePerHour:      p.CostRate,
		ProgressRate:         p.ProgressRate,
		PredictedFinishHours: float64(p.PredictedFinish) / float64(trace.Hour),
		DeadlineMarginHours:  float64(p.DeadlineMargin) / float64(trace.Hour),
	}
}
