package quote

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

// streamFixture is a deterministic synthetic feed plus a fast
// subscription shape.
type streamFixture struct {
	set   *trace.Set
	shape StreamRequest
}

func newStreamFixture() streamFixture {
	return streamFixture{
		set:   tracegen.HighVolatility(7),
		shape: StreamRequest{WorkHours: 4, DeadlineHours: 12, MaxZones: 2, Top: 3},
	}
}

// row returns the feed's i-th (0-based) price row.
func (fx streamFixture) row(i int) []float64 {
	return fx.set.PricesAt(fx.set.Start() + int64(i)*fx.set.Step())
}

// streamer builds a Streamer over the fixture's feed geometry.
func (fx streamFixture) streamer() *Streamer {
	return &Streamer{
		Zones:           fx.set.Zones(),
		Start:           fx.set.Start(),
		Step:            fx.set.Step(),
		StaleAfter:      time.Hour,
		CrossCheckEvery: -1,
	}
}

// reorderRow is the fixture row with the first zone made drastically
// more expensive — flipping the cheapest-zone ordering so the plan
// table is guaranteed to change and a generation is published.
func (fx streamFixture) reorderRow(i int) []float64 {
	row := append([]float64(nil), fx.row(i)...)
	row[0] *= 10
	return row
}

// TestStreamerFanOut covers subscription plumbing: same-shape
// subscribers share one resident evaluator and each receives a pushed
// change; the shape bound rejects new shapes; closing the last
// subscriber releases the shape.
func TestStreamerFanOut(t *testing.T) {
	fx := newStreamFixture()
	st := fx.streamer()
	st.MaxShapes = 1
	a, err := st.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	other := fx.shape
	other.Top = 5
	if _, err := st.Subscribe(other); !errors.Is(err, ErrStreamCapacity) {
		t.Fatalf("second shape err = %v, want ErrStreamCapacity", err)
	}
	if got := st.Metrics.ShapeRejects.Load(); got != 1 {
		t.Fatalf("ShapeRejects = %d, want 1", got)
	}
	for i := 0; i < 4; i++ {
		if err := st.Ingest(uint64(i+1), fx.row(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The flipped-ordering row must publish a generation to everyone.
	if err := st.Ingest(5, fx.reorderRow(4)); err != nil {
		t.Fatal(err)
	}
	var evA, evB *StreamEvent
	select {
	case evA = <-a.Events():
	default:
		t.Fatal("subscriber a got no event")
	}
	select {
	case evB = <-b.Events():
	default:
		t.Fatal("subscriber b got no event")
	}
	if evA != evB {
		t.Fatal("same-shape subscribers should receive the same published event")
	}
	if evA.Generation == 0 || evA.Best == nil {
		t.Fatalf("empty event: %+v", evA)
	}
	if got := st.Generation(a); got != evA.Generation {
		t.Fatalf("Generation = %d, want %d", got, evA.Generation)
	}
	if got := st.Metrics.Subscribers.Load(); got != 2 {
		t.Fatalf("Subscribers = %d, want 2", got)
	}
	a.Close()
	a.Close() // idempotent
	b.Close()
	if got := st.Metrics.Subscribers.Load(); got != 0 {
		t.Fatalf("Subscribers after close = %d, want 0", got)
	}
	// The shape was released: a new same-shape subscribe catches up from
	// the backlog and sees the current table as its snapshot.
	c, err := st.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Snapshot() == nil || c.Snapshot().Best == nil {
		t.Fatal("re-created shape has no catch-up snapshot")
	}
}

// TestStreamerLatestWins pins the slow-consumer contract: a subscriber
// that never drains coalesces to the newest event instead of blocking
// the tick pipeline.
func TestStreamerLatestWins(t *testing.T) {
	fx := newStreamFixture()
	st := fx.streamer()
	sub, err := st.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := st.Ingest(1, fx.row(0)); err != nil {
		t.Fatal(err)
	}
	// Two ordering flips back to back, never draining in between.
	if err := st.Ingest(2, fx.reorderRow(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Ingest(3, fx.row(2)); err != nil {
		t.Fatal(err)
	}
	ev := <-sub.Events()
	if want := st.Latest(sub); ev != want {
		t.Fatalf("coalesced event generation %d, want latest %d", ev.Generation, want.Generation)
	}
	select {
	case stale := <-sub.Events():
		t.Fatalf("stale event generation %d still queued", stale.Generation)
	default:
	}
}

// TestStreamerFeedChaos is the feed-fault scenario: duplicate and
// reordered sequence numbers are dropped, gaps are filled by repeating
// the held price, and the resulting table is identical to a clean feed
// that delivered the same effective rows — chaos on the wire never
// reaches the evaluators.
func TestStreamerFeedChaos(t *testing.T) {
	fx := newStreamFixture()
	chaotic := fx.streamer()
	clean := fx.streamer()
	csub, err := chaotic.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	defer csub.Close()
	ksub, err := clean.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	defer ksub.Close()

	const n = 60
	rng := rand.New(rand.NewSource(42))
	var cleanRows [][]float64
	var lastDelivered []float64
	var dups, gaps, lastSeq int
	for seq := 1; seq <= n; seq++ {
		row := fx.row(seq - 1)
		if seq > 1 && rng.Float64() < 0.2 {
			// Feed gap: the sample never arrives; the streamer must act
			// as if the last delivered price held.
			gaps++
			cleanRows = append(cleanRows, lastDelivered)
			continue
		}
		if err := chaotic.Ingest(uint64(seq), row); err != nil {
			t.Fatal(err)
		}
		lastDelivered = row
		lastSeq = seq
		cleanRows = append(cleanRows, row)
		if rng.Float64() < 0.2 {
			// Duplicate/reordered delivery of an older sample.
			dups++
			if err := chaotic.Ingest(uint64(seq), fx.row(rng.Intn(seq))); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Trailing gaps are only filled once a later sequence arrives, so
	// the clean equivalent ends at the last delivered sequence.
	trail := n - lastSeq
	cleanRows = cleanRows[:lastSeq]
	for i, row := range cleanRows {
		if err := clean.Ingest(uint64(i+1), row); err != nil {
			t.Fatal(err)
		}
	}

	if got := chaotic.Metrics.DupTicks.Load(); got != int64(dups) {
		t.Errorf("DupTicks = %d, want %d", got, dups)
	}
	if got := chaotic.Metrics.GapFills.Load(); got != int64(gaps-trail) {
		t.Errorf("GapFills = %d, want %d", got, gaps-trail)
	}
	if got, want := chaotic.Metrics.Ticks.Load(), clean.Metrics.Ticks.Load(); got != want {
		t.Fatalf("chaotic feed applied %d ticks, clean %d", got, want)
	}
	a, b := chaotic.Latest(csub), clean.Latest(ksub)
	if (a == nil) != (b == nil) {
		t.Fatalf("latest: chaotic %v, clean %v", a, b)
	}
	if a != nil {
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("chaotic table diverges from clean feed\nchaotic %s\nclean   %s", aj, bj)
		}
	}
}

// TestStreamerLateSubscriber pins backlog catch-up: subscribing after
// the feed has been running yields the same table an early subscriber
// has.
func TestStreamerLateSubscriber(t *testing.T) {
	fx := newStreamFixture()
	st := fx.streamer()
	early, err := st.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	defer early.Close()
	for i := 0; i < 12; i++ {
		row := fx.row(i)
		if i == 8 {
			row = fx.reorderRow(i)
		}
		if err := st.Ingest(uint64(i+1), row); err != nil {
			t.Fatal(err)
		}
	}
	// A different shape forces a fresh evaluator fed purely from the
	// backlog; same shape must join the resident evaluator.
	late, err := st.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if got, want := late.Snapshot(), st.Latest(early); got != want {
		t.Fatalf("same-shape late subscriber snapshot %p, want shared %p", got, want)
	}
	other := fx.shape
	other.MaxZones = 1
	osub, err := st.Subscribe(other)
	if err != nil {
		t.Fatal(err)
	}
	defer osub.Close()
	snap := osub.Snapshot()
	if snap == nil || snap.Best == nil || snap.Generation == 0 {
		t.Fatalf("fresh-shape catch-up produced no table: %+v", snap)
	}
	if len(snap.Best.Zones) != 1 {
		t.Fatalf("max_zones=1 shape ranked %d-zone best plan", len(snap.Best.Zones))
	}
}

// TestStreamerIngestValidation covers the feed-side error path.
func TestStreamerIngestValidation(t *testing.T) {
	fx := newStreamFixture()
	st := fx.streamer()
	if err := st.Ingest(1, []float64{1}); err == nil {
		t.Fatal("short row accepted")
	}
}

// TestStreamSSEEndpoint drives the SSE wire end to end: headers,
// the immediate snapshot frame, and a pushed frame arriving over the
// open connection when the feed moves.
func TestStreamSSEEndpoint(t *testing.T) {
	fx := newStreamFixture()
	st := fx.streamer()
	for i := 0; i < 6; i++ {
		if err := st.Ingest(uint64(i+1), fx.row(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewStreamingHandler(testService(), st))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/v1/quotes/stream?work_hours=4&deadline_hours=12&max_zones=2&top=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	if resp.Header.Get("X-Plan-Generation") == "" {
		t.Fatal("missing X-Plan-Generation")
	}
	if resp.Header.Get("X-Quote-Stale") != "" {
		t.Fatal("fresh feed marked stale")
	}

	frames := make(chan sseFrame)
	go func() {
		defer close(frames)
		br := bufio.NewReader(resp.Body)
		for {
			fr, err := readSSEFrame(br)
			if err != nil {
				return
			}
			frames <- fr
		}
	}()
	first := nextFrame(t, frames)
	if first.event != "plan" {
		t.Fatalf("first frame event %q", first.event)
	}
	var snap StreamEvent
	if err := json.Unmarshal([]byte(first.data), &snap); err != nil {
		t.Fatalf("snapshot frame: %v", err)
	}
	if snap.Best == nil {
		t.Fatal("snapshot frame has no best plan")
	}
	// The snapshot frame is read, so the subscription is live: a
	// table-changing tick must arrive as a pushed frame over the same
	// connection — the incremental-flush contract.
	if err := st.Ingest(7, fx.reorderRow(6)); err != nil {
		t.Fatal(err)
	}
	second := nextFrame(t, frames)
	if second.event != "plan" {
		t.Fatalf("pushed frame event %q", second.event)
	}
	var pushed StreamEvent
	if err := json.Unmarshal([]byte(second.data), &pushed); err != nil {
		t.Fatal(err)
	}
	if pushed.Generation <= snap.Generation {
		t.Fatalf("pushed generation %d not past snapshot %d", pushed.Generation, snap.Generation)
	}
	cancel()
	waitFor(t, "subscriber release", func() bool { return st.Metrics.Subscribers.Load() == 0 })
}

type sseFrame struct{ id, event, data string }

// readSSEFrame parses one blank-line-terminated SSE frame.
func readSSEFrame(br *bufio.Reader) (sseFrame, error) {
	var fr sseFrame
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return fr, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if fr.event != "" || fr.data != "" {
				return fr, nil
			}
		case strings.HasPrefix(line, "id: "):
			fr.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			fr.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			fr.data = line[len("data: "):]
		}
	}
}

func nextFrame(t *testing.T, frames <-chan sseFrame) sseFrame {
	t.Helper()
	select {
	case fr, ok := <-frames:
		if !ok {
			t.Fatal("stream closed before frame")
		}
		return fr
	case <-time.After(15 * time.Second):
		t.Fatal("no SSE frame within 15s")
	}
	panic("unreachable")
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestStreamPollEndpoint covers the long-poll mode: an immediate
// answer past the client's generation, and a 204 heartbeat — flagged
// stale here, because the fixture stalls the feed — when nothing newer
// arrives in time.
func TestStreamPollEndpoint(t *testing.T) {
	fx := newStreamFixture()
	st := fx.streamer()
	st.StaleAfter = time.Nanosecond // any pause counts as a stall
	for i := 0; i < 6; i++ {
		if err := st.Ingest(uint64(i+1), fx.row(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewStreamingHandler(testService(), st))
	defer srv.Close()
	base := srv.URL + "/v1/quotes/stream?work_hours=4&deadline_hours=12&max_zones=2&top=3&mode=poll"

	resp, err := http.Get(base + "&gen=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ev StreamEvent
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Best == nil || ev.Generation == 0 {
		t.Fatalf("empty poll answer: %s", body)
	}
	if got := resp.Header.Get("X-Plan-Generation"); got != strconv.FormatUint(ev.Generation, 10) {
		t.Fatalf("X-Plan-Generation %q, body generation %d", got, ev.Generation)
	}

	resp, err = http.Get(base + "&gen=" + strconv.FormatUint(ev.Generation, 10) + "&timeout_ms=50")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("timeout status %d, want 204", resp.StatusCode)
	}
	if resp.Header.Get("X-Quote-Stale") != "true" {
		t.Fatal("stalled feed not flagged X-Quote-Stale on poll timeout")
	}
	if got := resp.Header.Get("X-Plan-Generation"); got != strconv.FormatUint(ev.Generation, 10) {
		t.Fatalf("timeout X-Plan-Generation %q, want %d", got, ev.Generation)
	}
	waitFor(t, "subscriber release", func() bool { return st.Metrics.Subscribers.Load() == 0 })
}

// TestStreamEndpointValidation covers the request-side error paths.
func TestStreamEndpointValidation(t *testing.T) {
	fx := newStreamFixture()
	srv := httptest.NewServer(NewStreamingHandler(testService(), fx.streamer()))
	defer srv.Close()
	for _, q := range []string{
		"",                               // missing work/deadline
		"work_hours=4",                   // missing deadline
		"work_hours=4&deadline_hours=2",  // deadline below work
		"work_hours=x&deadline_hours=12", // unparsable
		"work_hours=4&deadline_hours=12&max_zones=99", // over limit
	} {
		resp, err := http.Get(srv.URL + "/v1/quotes/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestAttachStreamMetricsRender pins that the streaming counters land
// on the service registry (after the pinned base exposition, which a
// golden test guards separately).
func TestAttachStreamMetricsRender(t *testing.T) {
	m := NewMetrics()
	sm := m.AttachStream()
	sm.Ticks.Add(3)
	sm.GapFills.Inc()
	var buf strings.Builder
	m.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"quoted_stream_ticks_total 3",
		"quoted_stream_gap_fills_total 1",
		"quoted_stream_subscribers 0",
		`quoted_latency_seconds{stage="plan_push",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
