package quote

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// histBounds are the latency histogram bucket upper bounds in seconds
// (log-spaced, 0.5 ms – 60 s, plus an implicit +Inf bucket).
var histBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket latency histogram with approximate
// quantiles (linear interpolation inside the winning bucket). It is
// safe for concurrent use.
type histogram struct {
	mu      sync.Mutex
	buckets []int64
	count   int64
	sum     float64
}

// newHistogram returns an empty histogram over histBounds.
func newHistogram() *histogram {
	return &histogram{buckets: make([]int64, len(histBounds)+1)}
}

// observe records one latency in seconds.
func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(histBounds, seconds)
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += seconds
	h.mu.Unlock()
}

// quantile approximates the q-quantile (0 < q < 1) in seconds; an
// empty histogram reports 0. Values in the overflow bucket report the
// last finite bound.
func (h *histogram) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := histBounds[len(histBounds)-1]
			if i < len(histBounds) {
				hi = histBounds[i]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return histBounds[len(histBounds)-1]
}

// snapshot returns count and sum.
func (h *histogram) snapshot() (count int64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum
}

// Metrics aggregates the service's counters and per-stage latency
// histograms. All fields are safe for concurrent use; the zero value is
// not ready — use NewMetrics.
type Metrics struct {
	// Requests counts quote requests accepted for processing.
	Requests atomic.Int64
	// ValidationErrors counts requests rejected by decode/validation.
	ValidationErrors atomic.Int64
	// HistoryErrors counts history-source failures.
	HistoryErrors atomic.Int64
	// EvalErrors counts evaluation failures.
	EvalErrors atomic.Int64
	// CacheHits and CacheMisses count plan-cache lookups.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Coalesced counts requests served by joining another request's
	// in-flight evaluation.
	Coalesced atomic.Int64
	// InFlight gauges quote requests currently being processed.
	InFlight atomic.Int64
	// StalePlans counts quotes served from the last-known-good store
	// because live history was unavailable (degraded mode).
	StalePlans atomic.Int64
	// BreakerOpens counts circuit-breaker open transitions.
	BreakerOpens atomic.Int64
	// BreakerHalfOpens counts half-open probes admitted after a
	// cooldown.
	BreakerHalfOpens atomic.Int64
	// BreakerFastFails counts requests that skipped the history fetch
	// because the breaker was open.
	BreakerFastFails atomic.Int64
	// FeedStaleServes counts history fetches answered from the feed
	// source's stale cache after an upstream failure.
	FeedStaleServes atomic.Int64
	// WatchdogTrips counts feed-source serves whose cached history had
	// aged past the staleness watchdog bound.
	WatchdogTrips atomic.Int64

	history *histogram // history-fetch stage latency
	eval    *histogram // evaluation stage latency
	total   *histogram // whole-request latency
}

// NewMetrics returns a ready Metrics.
func NewMetrics() *Metrics {
	return &Metrics{history: newHistogram(), eval: newHistogram(), total: newHistogram()}
}

// quantiles reported on /metrics.
var metricQuantiles = []float64{0.5, 0.9, 0.99}

// Render writes the metrics in Prometheus text exposition style.
func (m *Metrics) Render(w io.Writer) {
	fmt.Fprintf(w, "quoted_requests_total %d\n", m.Requests.Load())
	fmt.Fprintf(w, "quoted_validation_errors_total %d\n", m.ValidationErrors.Load())
	fmt.Fprintf(w, "quoted_history_errors_total %d\n", m.HistoryErrors.Load())
	fmt.Fprintf(w, "quoted_eval_errors_total %d\n", m.EvalErrors.Load())
	fmt.Fprintf(w, "quoted_cache_hits_total %d\n", m.CacheHits.Load())
	fmt.Fprintf(w, "quoted_cache_misses_total %d\n", m.CacheMisses.Load())
	fmt.Fprintf(w, "quoted_coalesced_total %d\n", m.Coalesced.Load())
	fmt.Fprintf(w, "quoted_in_flight %d\n", m.InFlight.Load())
	fmt.Fprintf(w, "quoted_stale_plans_total %d\n", m.StalePlans.Load())
	fmt.Fprintf(w, "quoted_breaker_opens_total %d\n", m.BreakerOpens.Load())
	fmt.Fprintf(w, "quoted_breaker_half_opens_total %d\n", m.BreakerHalfOpens.Load())
	fmt.Fprintf(w, "quoted_breaker_fast_fails_total %d\n", m.BreakerFastFails.Load())
	fmt.Fprintf(w, "quoted_feed_stale_serves_total %d\n", m.FeedStaleServes.Load())
	fmt.Fprintf(w, "quoted_watchdog_trips_total %d\n", m.WatchdogTrips.Load())
	for _, st := range []struct {
		name string
		h    *histogram
	}{{"history", m.history}, {"eval", m.eval}, {"total", m.total}} {
		for _, q := range metricQuantiles {
			fmt.Fprintf(w, "quoted_latency_seconds{stage=%q,quantile=\"%g\"} %g\n", st.name, q, st.h.quantile(q))
		}
		count, sum := st.h.snapshot()
		fmt.Fprintf(w, "quoted_latency_seconds_count{stage=%q} %d\n", st.name, count)
		fmt.Fprintf(w, "quoted_latency_seconds_sum{stage=%q} %g\n", st.name, sum)
	}
}
