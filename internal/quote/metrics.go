package quote

import (
	"io"

	"repro/internal/obs"
)

// Metrics aggregates the service's counters and per-stage latency
// histograms on the obs registry. All fields are safe for concurrent
// use; the zero value is not ready — use NewMetrics.
type Metrics struct {
	// Requests counts quote requests accepted for processing.
	Requests obs.Counter
	// ValidationErrors counts requests rejected by decode/validation.
	ValidationErrors obs.Counter
	// HistoryErrors counts history-source failures.
	HistoryErrors obs.Counter
	// EvalErrors counts evaluation failures.
	EvalErrors obs.Counter
	// CacheHits and CacheMisses count plan-cache lookups.
	CacheHits   obs.Counter
	CacheMisses obs.Counter
	// Coalesced counts requests served by joining another request's
	// in-flight evaluation.
	Coalesced obs.Counter
	// InFlight gauges quote requests currently being processed.
	InFlight obs.Gauge
	// StalePlans counts quotes served from the last-known-good store
	// because live history was unavailable (degraded mode).
	StalePlans obs.Counter
	// BreakerOpens counts circuit-breaker open transitions.
	BreakerOpens obs.Counter
	// BreakerHalfOpens counts half-open probes admitted after a
	// cooldown.
	BreakerHalfOpens obs.Counter
	// BreakerFastFails counts requests that skipped the history fetch
	// because the breaker was open.
	BreakerFastFails obs.Counter
	// FeedStaleServes counts history fetches answered from the feed
	// source's stale cache after an upstream failure.
	FeedStaleServes obs.Counter
	// WatchdogTrips counts feed-source serves whose cached history had
	// aged past the staleness watchdog bound.
	WatchdogTrips obs.Counter

	history *obs.Histogram // history-fetch stage latency
	eval    *obs.Histogram // evaluation stage latency
	total   *obs.Histogram // whole-request latency

	reg obs.Registry
}

// quantiles reported on /metrics.
var metricQuantiles = []float64{0.5, 0.9, 0.99}

// NewMetrics returns a ready Metrics. Registration order mirrors the
// historical hand-written exposition, which a golden test pins
// byte-for-byte.
func NewMetrics() *Metrics {
	m := &Metrics{
		history: obs.NewHistogram(nil),
		eval:    obs.NewHistogram(nil),
		total:   obs.NewHistogram(nil),
	}
	m.reg.Counter("quoted_requests_total", &m.Requests)
	m.reg.Counter("quoted_validation_errors_total", &m.ValidationErrors)
	m.reg.Counter("quoted_history_errors_total", &m.HistoryErrors)
	m.reg.Counter("quoted_eval_errors_total", &m.EvalErrors)
	m.reg.Counter("quoted_cache_hits_total", &m.CacheHits)
	m.reg.Counter("quoted_cache_misses_total", &m.CacheMisses)
	m.reg.Counter("quoted_coalesced_total", &m.Coalesced)
	m.reg.Gauge("quoted_in_flight", &m.InFlight)
	m.reg.Counter("quoted_stale_plans_total", &m.StalePlans)
	m.reg.Counter("quoted_breaker_opens_total", &m.BreakerOpens)
	m.reg.Counter("quoted_breaker_half_opens_total", &m.BreakerHalfOpens)
	m.reg.Counter("quoted_breaker_fast_fails_total", &m.BreakerFastFails)
	m.reg.Counter("quoted_feed_stale_serves_total", &m.FeedStaleServes)
	m.reg.Counter("quoted_watchdog_trips_total", &m.WatchdogTrips)
	m.reg.Histogram("quoted_latency_seconds", "stage", "history", metricQuantiles, m.history)
	m.reg.Histogram("quoted_latency_seconds", "stage", "eval", metricQuantiles, m.eval)
	m.reg.Histogram("quoted_latency_seconds", "stage", "total", metricQuantiles, m.total)
	return m
}

// Render writes the metrics in Prometheus text exposition style.
func (m *Metrics) Render(w io.Writer) {
	m.reg.Render(w)
}
