package quote

import (
	"sync"
	"time"
)

// Breaker defaults.
const (
	// DefaultBreakerThreshold is how many consecutive history-source
	// failures open the breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long an open breaker rejects
	// upstream calls before admitting a half-open probe.
	DefaultBreakerCooldown = 10 * time.Second
)

// breakerState is the classic three-state circuit-breaker lifecycle.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a consecutive-failure circuit breaker guarding the
// history source: after Threshold straight failures it opens and the
// service stops hammering a dead upstream (serving last-known-good
// plans instead); after Cooldown one half-open probe is admitted, and
// its outcome closes or re-opens the circuit. The zero value is ready
// and selects the defaults. A Breaker is safe for concurrent use.
type Breaker struct {
	// Threshold is the consecutive failures that open the breaker;
	// 0 selects DefaultBreakerThreshold.
	Threshold int
	// Cooldown is the open period before a half-open probe; 0 selects
	// DefaultBreakerCooldown.
	Cooldown time.Duration
	// Now is overridable for tests; nil selects time.Now.
	Now func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
}

// now returns the breaker's clock reading.
func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

// Allow reports whether an upstream call may proceed. In the open
// state it returns false until the cooldown elapses, then admits
// exactly one probe (probe true) and holds further callers off until
// the probe resolves via Success or Failure.
func (b *Breaker) Allow() (allowed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		cd := b.Cooldown
		if cd <= 0 {
			cd = DefaultBreakerCooldown
		}
		if b.now().Sub(b.openedAt) < cd {
			return false, false
		}
		b.state = breakerHalfOpen
		return true, true
	default: // half-open: a probe is already in flight
		return false, false
	}
}

// Success records a healthy upstream call, closing the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
}

// Failure records a failed upstream call and reports whether this one
// opened the circuit (for metrics: each open is counted once).
func (b *Breaker) Failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	threshold := b.Threshold
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	b.failures++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.failures >= threshold) {
		b.state = breakerOpen
		b.openedAt = b.now()
		return true
	}
	return false
}

// Degraded reports whether the circuit is not closed — the service is
// running on stale plans rather than live history.
func (b *Breaker) Degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerClosed
}
