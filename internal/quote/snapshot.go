package quote

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/core"
)

// Crash recovery for the streaming service: the Streamer checkpoints
// its feed position (sequence number, last row, retained backlog) and
// every resident shape's evaluator snapshot into a pluggable store. A
// restarted process restores the checkpoint and then needs only the
// feed ticks published after it — the catch-up is (current seq −
// snapshot seq) rows, never the full window, and the per-shape digest
// check inherited from core.StreamSnapshot proves the resumed plan
// tables and generations equal the crashed ones bit for bit. Because a
// shape's generation is a deterministic function of the tick stream,
// a resumed backend's generations stay comparable with its never-
// crashed peers — which is what lets SSE clients resume across
// failover on Last-Event-ID alone.

// SnapshotStore persists streamer checkpoints. Save replaces the
// previous checkpoint atomically; Load returns the latest one, or
// (nil, nil) when none has been written.
type SnapshotStore interface {
	Save(*StreamerSnapshot) error
	Load() (*StreamerSnapshot, error)
}

// ShapeSnapshot is one resident request shape inside a checkpoint.
type ShapeSnapshot struct {
	// Req is the subscription shape, already normalized.
	Req StreamRequest `json:"req"`
	// State is the shape's evaluator checkpoint.
	State *core.StreamSnapshot `json:"state"`
}

// StreamerSnapshot is one Streamer checkpoint: the feed position plus
// every resident shape's evaluator state, JSON-serialisable. Shapes are
// ordered by canonical key so equal states serialize to equal bytes.
type StreamerSnapshot struct {
	// Seq is the last feed sequence number applied.
	Seq uint64 `json:"seq"`
	// Zones, Start, Step mirror the streamer's feed geometry.
	Zones []string `json:"zones"`
	Start int64    `json:"start"`
	Step  int64    `json:"step"`
	// Dropped is how many backlog rows trimming has discarded, ever —
	// it anchors restored evaluator windows to absolute time.
	Dropped uint64 `json:"dropped"`
	// LastRow is the last applied price row (gap fills repeat it).
	LastRow []float64 `json:"last_row,omitempty"`
	// Backlog is the retained catch-up window for late subscribers.
	Backlog [][]float64 `json:"backlog,omitempty"`
	// Shapes are the resident shapes, ordered by StreamRequest.Key.
	Shapes []ShapeSnapshot `json:"shapes,omitempty"`
}

// Snapshot captures the streamer's resumable state under its lock.
func (st *Streamer) Snapshot() *StreamerSnapshot {
	st.init()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.snapshotLocked()
}

func (st *Streamer) snapshotLocked() *StreamerSnapshot {
	snap := &StreamerSnapshot{
		Seq:     st.seq,
		Zones:   append([]string(nil), st.Zones...),
		Start:   st.Start,
		Step:    st.Step,
		Dropped: st.dropped,
		LastRow: append([]float64(nil), st.lastRow...),
		Backlog: make([][]float64, len(st.backlog)),
	}
	for i, row := range st.backlog {
		snap.Backlog[i] = append([]float64(nil), row...)
	}
	for _, sh := range st.shapes {
		snap.Shapes = append(snap.Shapes, ShapeSnapshot{Req: sh.req, State: sh.se.Snapshot()})
	}
	sort.Slice(snap.Shapes, func(i, j int) bool {
		return snap.Shapes[i].Req.Key() < snap.Shapes[j].Req.Key()
	})
	return snap
}

// checkpointLocked writes one checkpoint through the configured store.
// The write happens under the streamer lock — Ingest is the only
// caller, so a checkpoint and a tick never interleave; stores should
// keep Save cheap (a JSON encode plus an atomic rename).
func (st *Streamer) checkpointLocked() {
	if err := st.Store.Save(st.snapshotLocked()); err != nil {
		st.Metrics.CheckpointErrors.Inc()
		return
	}
	st.Metrics.Checkpoints.Inc()
}

// Seq returns the last feed sequence number the streamer applied (0
// before the first tick) — a restarted feed replays from Seq()+1.
func (st *Streamer) Seq() uint64 {
	st.init()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.seq
}

// Restore rebuilds the streamer from a checkpoint. It is only valid on
// a fresh streamer (no ticks ingested, no shapes resident) whose feed
// geometry matches the snapshot's. Every shape's evaluator is restored
// through its digest-verified core Restore, so a corrupt checkpoint is
// refused whole rather than partially applied. The restored streamer
// reports Stale until the feed resumes, and expects the next Ingest at
// sequence Seq()+1 — earlier sequences drop as duplicates, later ones
// gap-fill, exactly as for a streamer that never crashed.
func (st *Streamer) Restore(snap *StreamerSnapshot) error {
	st.init()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.seq != 0 || len(st.shapes) != 0 || len(st.backlog) != 0 {
		return fmt.Errorf("quote: Restore on a streamer that has already ingested ticks")
	}
	if len(snap.Zones) != len(st.Zones) {
		return fmt.Errorf("quote: snapshot has %d zones, streamer %d", len(snap.Zones), len(st.Zones))
	}
	for i, z := range snap.Zones {
		if z != st.Zones[i] {
			return fmt.Errorf("quote: snapshot zone %d is %q, streamer has %q", i, z, st.Zones[i])
		}
	}
	if snap.Start != st.Start || snap.Step != st.Step {
		return fmt.Errorf("quote: snapshot geometry (start %d step %d) does not match streamer (start %d step %d)",
			snap.Start, snap.Step, st.Start, st.Step)
	}
	// Restore shapes first: a failure must leave the streamer fresh.
	st.dropped = snap.Dropped // streamConfigLocked anchors windows on it
	restored := make(map[string]*streamShape, len(snap.Shapes))
	for i := range snap.Shapes {
		ss := &snap.Shapes[i]
		req := ss.Req
		req.Normalize()
		if err := req.Validate(); err != nil {
			st.dropped = 0
			return fmt.Errorf("quote: snapshot shape %d: %w", i, err)
		}
		se, err := core.NewStreamEvaluator(st.Eval, st.streamConfigLocked(req))
		if err == nil {
			err = se.Restore(ss.State)
		}
		if err != nil {
			st.dropped = 0
			return fmt.Errorf("quote: snapshot shape %q: %w", req.Key(), err)
		}
		sh := &streamShape{req: req, se: se, subs: make(map[*StreamSub]struct{})}
		if gen := se.Generation(); gen > 0 {
			upd := core.StreamUpdate{
				Generation: gen,
				Tick:       ss.State.Ticks,
				Steps:      se.Steps(),
				At:         ss.State.Start + (int64(len(ss.State.Rows))-1)*snap.Step,
				Plans:      se.Plans(),
			}
			sh.last = sh.event(&upd, false)
		}
		restored[req.Key()] = sh
	}
	st.seq = snap.Seq
	st.lastRow = append([]float64(nil), snap.LastRow...)
	st.backlog = make([][]float64, len(snap.Backlog))
	for i, row := range snap.Backlog {
		st.backlog[i] = append([]float64(nil), row...)
	}
	for k, sh := range restored {
		st.shapes[k] = sh
	}
	st.Metrics.Restores.Inc()
	return nil
}

// MemStore is an in-memory SnapshotStore: it models durable storage
// that survives a backend restart (the chaos fleet hands the same
// MemStore to the restarted instance). The checkpoint is held as JSON
// bytes so Save/Load round-trip exactly like a disk store and never
// alias live streamer state.
type MemStore struct {
	mu  sync.Mutex
	raw []byte
	// Saves counts checkpoints written, for harness assertions.
	saves int
}

// Save serializes and retains the checkpoint.
func (m *MemStore) Save(snap *StreamerSnapshot) error {
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.raw = raw
	m.saves++
	return nil
}

// Load returns the latest checkpoint, or (nil, nil) before the first
// Save.
func (m *MemStore) Load() (*StreamerSnapshot, error) {
	m.mu.Lock()
	raw := m.raw
	m.mu.Unlock()
	if raw == nil {
		return nil, nil
	}
	var snap StreamerSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Saves returns how many checkpoints have been written.
func (m *MemStore) Saves() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saves
}

// FileStore persists checkpoints as JSON at Path, replacing the
// previous one atomically (write to a temp file in the same directory,
// then rename), so a crash mid-write leaves the prior checkpoint
// intact.
type FileStore struct {
	Path string
}

// Save atomically replaces the checkpoint file.
func (f *FileStore) Save(snap *StreamerSnapshot) error {
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	tmp := f.Path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, f.Path)
}

// Load reads the checkpoint file; a missing file is (nil, nil).
func (f *FileStore) Load() (*StreamerSnapshot, error) {
	raw, err := os.ReadFile(f.Path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var snap StreamerSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("quote: snapshot file %s: %w", f.Path, err)
	}
	return &snap, nil
}
