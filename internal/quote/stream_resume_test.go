package quote

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/leak"
)

// sseClient opens one SSE subscription and pumps parsed frames.
func sseClient(t *testing.T, ctx context.Context, url string, lastEventID string) (*http.Response, <-chan sseFrame) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	frames := make(chan sseFrame)
	go func() {
		defer close(frames)
		br := bufio.NewReader(resp.Body)
		for {
			fr, err := readSSEFrame(br)
			if err != nil {
				return
			}
			select {
			case frames <- fr:
			case <-ctx.Done():
				// The test stopped consuming; don't park on the send.
				return
			}
		}
	}()
	return resp, frames
}

// TestStreamSSEResume pins the reconnect contract: a client presenting
// Last-Event-ID gets no replay of tables it already holds, announced
// generations are floored at its resume point, and the next real table
// change arrives with a strictly higher generation — monotonic across
// the reconnect.
func TestStreamSSEResume(t *testing.T) {
	defer leak.CheckT(t, leak.Baseline())
	fx := newStreamFixture()
	st := fx.streamer()
	st.Heartbeat = 30 * time.Millisecond
	for i := 0; i < 4; i++ {
		if err := st.Ingest(uint64(i+1), fx.reorderRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := st.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	gen := st.Generation(sub)
	sub.Close()
	if gen < 2 {
		t.Fatalf("fixture produced generation %d, want >= 2", gen)
	}
	srv := httptest.NewServer(NewStreamingHandler(testService(), st))
	defer srv.Close()
	url := srv.URL + "/v1/quotes/stream?work_hours=4&deadline_hours=12&max_zones=2&top=3"

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, frames := sseClient(t, ctx, url, strconv.FormatUint(gen, 10))
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Plan-Generation"); got != strconv.FormatUint(gen, 10) {
		t.Fatalf("X-Plan-Generation %q, want %d", got, gen)
	}
	// No replay: the first frame is a heartbeat at the resume floor,
	// not the snapshot the client already holds.
	first := nextFrame(t, frames)
	if first.event != "heartbeat" {
		t.Fatalf("first frame after resume is %q, want heartbeat", first.event)
	}
	var hb StreamEvent
	if err := json.Unmarshal([]byte(first.data), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Generation != gen {
		t.Fatalf("heartbeat generation %d, want resume floor %d", hb.Generation, gen)
	}
	// A real change still comes through, strictly past the floor.
	if err := st.Ingest(5, fx.row(4)); err != nil {
		t.Fatal(err)
	}
	if err := st.Ingest(6, fx.reorderRow(5)); err != nil {
		t.Fatal(err)
	}
	last := gen
	for {
		fr := nextFrame(t, frames)
		var ev StreamEvent
		if err := json.Unmarshal([]byte(fr.data), &ev); err != nil {
			t.Fatal(err)
		}
		if fr.event == "heartbeat" {
			if ev.Generation < last {
				t.Fatalf("heartbeat generation %d regressed below %d", ev.Generation, last)
			}
			continue
		}
		if ev.Generation <= gen {
			t.Fatalf("replayed generation %d at or below resume floor %d", ev.Generation, gen)
		}
		break
	}
	cancel()
	waitFor(t, "subscriber release", func() bool { return st.Metrics.Subscribers.Load() == 0 })
}

// TestStreamSSEResumeAhead pins the failover case: a client whose
// resume floor is ahead of this backend (it was served by a faster
// peer) must not see generations regress — heartbeats announce the
// floor, and stale lower tables are suppressed.
func TestStreamSSEResumeAhead(t *testing.T) {
	defer leak.CheckT(t, leak.Baseline())
	fx := newStreamFixture()
	st := fx.streamer()
	st.Heartbeat = 30 * time.Millisecond
	for i := 0; i < 3; i++ {
		if err := st.Ingest(uint64(i+1), fx.reorderRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := st.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	ahead := st.Generation(sub) + 5
	sub.Close()
	srv := httptest.NewServer(NewStreamingHandler(testService(), st))
	defer srv.Close()
	url := srv.URL + "/v1/quotes/stream?work_hours=4&deadline_hours=12&max_zones=2&top=3&gen=" + strconv.FormatUint(ahead, 10)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, frames := sseClient(t, ctx, url, "")
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Plan-Generation"); got != strconv.FormatUint(ahead, 10) {
		t.Fatalf("X-Plan-Generation %q, want floored %d", got, ahead)
	}
	for i := 0; i < 3; i++ {
		fr := nextFrame(t, frames)
		if fr.event != "heartbeat" {
			t.Fatalf("frame %d: event %q with a behind backend, want heartbeat", i, fr.event)
		}
		var ev StreamEvent
		if err := json.Unmarshal([]byte(fr.data), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Generation != ahead {
			t.Fatalf("heartbeat generation %d, want floor %d", ev.Generation, ahead)
		}
	}
	cancel()
	waitFor(t, "subscriber release", func() bool { return st.Metrics.Subscribers.Load() == 0 })
}

// TestStreamSSEClientDisconnect covers the mid-stream disconnect: the
// client vanishes between pushed frames, the handler unwinds on the
// failed write or context, the subscription releases, and nothing
// leaks while the feed keeps ticking.
func TestStreamSSEClientDisconnect(t *testing.T) {
	defer leak.CheckT(t, leak.Baseline())
	fx := newStreamFixture()
	st := fx.streamer()
	st.Heartbeat = 20 * time.Millisecond
	for i := 0; i < 4; i++ {
		if err := st.Ingest(uint64(i+1), fx.reorderRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewStreamingHandler(testService(), st))
	defer srv.Close()
	url := srv.URL + "/v1/quotes/stream?work_hours=4&deadline_hours=12&max_zones=2&top=3"

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, frames := sseClient(t, ctx, url, "")
	if fr := nextFrame(t, frames); fr.event != "plan" {
		t.Fatalf("first frame %q", fr.event)
	}
	resp.Body.Close() // abrupt client death, mid-subscription
	for i := 4; i < 10; i++ {
		if err := st.Ingest(uint64(i+1), fx.reorderRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "subscriber release after disconnect", func() bool {
		return st.Metrics.Subscribers.Load() == 0
	})
}

// TestStreamPollContextCancel covers a long-poll abandoned mid-wait:
// the handler returns on the client's cancellation, releases the
// subscription, and leaks nothing.
func TestStreamPollContextCancel(t *testing.T) {
	defer leak.CheckT(t, leak.Baseline())
	fx := newStreamFixture()
	st := fx.streamer()
	for i := 0; i < 4; i++ {
		if err := st.Ingest(uint64(i+1), fx.row(i)); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := st.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	gen := st.Generation(sub)
	sub.Close()
	srv := httptest.NewServer(NewStreamingHandler(testService(), st))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	url := srv.URL + "/v1/quotes/stream?work_hours=4&deadline_hours=12&max_zones=2&top=3&mode=poll&gen=" +
		strconv.FormatUint(gen, 10) + "&timeout_ms=30000"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the poll block on the event channel
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled poll returned a response")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled poll did not return")
	}
	waitFor(t, "subscriber release after cancel", func() bool {
		return st.Metrics.Subscribers.Load() == 0
	})
}
