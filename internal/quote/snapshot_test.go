package quote

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/leak"
)

// TestStreamerSnapshotResume is the crash-recovery contract at the
// streamer level: a replacement streamer restored from the last
// checkpoint and fed only the feed sequences after it converges to the
// same plan tables and generations as the streamer that never crashed
// — and the catch-up is checkpoint-to-now, a fraction of the window.
func TestStreamerSnapshotResume(t *testing.T) {
	defer leak.CheckT(t, leak.Baseline())
	fx := newStreamFixture()
	store := &MemStore{}
	live := fx.streamer()
	live.Store = store
	live.CheckpointEvery = 4
	sub, err := live.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	const total = 10
	for i := 0; i < total; i++ {
		row := fx.row(i)
		if i == 6 {
			row = fx.reorderRow(i) // force a table change past the checkpoint
		}
		if err := live.Ingest(uint64(i+1), row); err != nil {
			t.Fatal(err)
		}
	}
	if store.Saves() == 0 {
		t.Fatal("no checkpoints written")
	}
	snap, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != 8 {
		t.Fatalf("last checkpoint at seq %v, want 8", snap)
	}

	// "Restart": a fresh streamer over the same store, restored, then
	// fed only the sequences after the checkpoint.
	resumed := fx.streamer()
	if err := resumed.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if resumed.Seq() != snap.Seq {
		t.Fatalf("restored seq %d, want %d", resumed.Seq(), snap.Seq)
	}
	catchUp := 0
	for i := int(snap.Seq); i < total; i++ {
		row := fx.row(i)
		if i == 6 {
			row = fx.reorderRow(i)
		}
		if err := resumed.Ingest(uint64(i+1), row); err != nil {
			t.Fatal(err)
		}
		catchUp++
	}
	if catchUp >= total/2 {
		t.Fatalf("catch-up replayed %d of %d ticks — not resuming from the snapshot", catchUp, total)
	}
	if got := resumed.Metrics.Restores.Load(); got != 1 {
		t.Fatalf("Restores = %d, want 1", got)
	}

	// The resumed streamer must hold the same table under the same
	// generation as the one that never crashed, byte for byte.
	want := live.Latest(sub)
	sub2, err := resumed.Subscribe(fx.shape)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	got := sub2.Snapshot()
	if want == nil || got == nil {
		t.Fatalf("missing tables: live %v resumed %v", want, got)
	}
	if got.Generation != want.Generation {
		t.Fatalf("resumed generation %d, live %d", got.Generation, want.Generation)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("resumed table diverges:\nlive    %s\nresumed %s", wantJSON, gotJSON)
	}
}

// TestStreamerRestoreRefusals pins the restore guards: a used
// streamer, mismatched geometry, and a tampered per-shape state must
// all be refused whole.
func TestStreamerRestoreRefusals(t *testing.T) {
	fx := newStreamFixture()
	src := fx.streamer()
	if sub, err := src.Subscribe(fx.shape); err != nil {
		t.Fatal(err)
	} else {
		defer sub.Close()
	}
	for i := 0; i < 6; i++ {
		if err := src.Ingest(uint64(i+1), fx.reorderRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := src.Snapshot()
	if len(snap.Shapes) != 1 {
		t.Fatalf("%d shapes in snapshot, want 1", len(snap.Shapes))
	}

	used := fx.streamer()
	if err := used.Ingest(1, fx.row(0)); err != nil {
		t.Fatal(err)
	}
	if err := used.Restore(snap); err == nil {
		t.Fatal("restore onto a ticked streamer succeeded")
	}

	wrongGeo := fx.streamer()
	wrongGeo.Start++
	if err := wrongGeo.Restore(snap); err == nil {
		t.Fatal("mismatched geometry restored")
	}

	tampered := fx.streamer()
	bad := *snap
	bad.Shapes = append([]ShapeSnapshot(nil), snap.Shapes...)
	state := *bad.Shapes[0].State
	state.StateDigest = "deadbeefdeadbeef"
	bad.Shapes[0].State = &state
	err := tampered.Restore(&bad)
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("tampered shape state restored: %v", err)
	}
	// The refusal must leave the streamer fresh and usable.
	if tampered.Seq() != 0 {
		t.Fatalf("failed restore left seq %d", tampered.Seq())
	}
	if err := tampered.Ingest(1, fx.row(0)); err != nil {
		t.Fatal(err)
	}
}

// TestFileStore covers the disk store: atomic save/load round trip and
// the missing-file contract.
func TestFileStore(t *testing.T) {
	fs := &FileStore{Path: filepath.Join(t.TempDir(), "quoted.snapshot")}
	if snap, err := fs.Load(); snap != nil || err != nil {
		t.Fatalf("missing file loaded (%v, %v), want (nil, nil)", snap, err)
	}
	fx := newStreamFixture()
	st := fx.streamer()
	st.Store = fs
	st.CheckpointEvery = 2
	if sub, err := st.Subscribe(fx.shape); err != nil {
		t.Fatal(err)
	} else {
		defer sub.Close()
	}
	for i := 0; i < 4; i++ {
		if err := st.Ingest(uint64(i+1), fx.reorderRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Metrics.Checkpoints.Load(); got != 2 {
		t.Fatalf("Checkpoints = %d, want 2", got)
	}
	snap, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != 4 || len(snap.Shapes) != 1 {
		t.Fatalf("loaded snapshot %+v", snap)
	}
	resumed := fx.streamer()
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if resumed.Seq() != 4 {
		t.Fatalf("resumed seq %d", resumed.Seq())
	}
}
