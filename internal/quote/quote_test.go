package quote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

// testService builds a service over a synthetic month of history.
func testService() *Service {
	return &Service{Source: &StaticSource{Set: tracegen.HighVolatility(7)}}
}

// testRequest is a small, fast request: a 3-hour replay window and a
// 2-zone permutation grid.
func testRequest() Request {
	return Request{WorkHours: 4, DeadlineHours: 8, HistoryWindowHours: 3, MaxZones: 2}
}

// TestDecodeRequest covers the decoder's rejection paths.
func TestDecodeRequest(t *testing.T) {
	if _, err := DecodeRequest(strings.NewReader(`{"work_hours":4,"deadline_hours":8,"history_window":3}`)); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []struct{ name, body string }{
		{"malformed", `{"work_hours":`},
		{"unknown field", `{"work_hours":4,"deadline_hours":8,"history_window":3,"bogus":1}`},
		{"trailing garbage", `{"work_hours":4,"deadline_hours":8,"history_window":3}{"again":true}`},
		{"wrong type", `{"work_hours":"four"}`},
		{"not an object", `[1,2,3]`},
	}
	for _, tc := range bad {
		_, err := DecodeRequest(strings.NewReader(tc.body))
		if err == nil {
			t.Errorf("%s: decoder accepted %q", tc.name, tc.body)
		} else if !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: error %v is not ErrInvalidRequest", tc.name, err)
		}
	}
}

// TestRequestValidation covers the satellite's required rejections and
// the limit checks.
func TestRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Request)
	}{
		{"negative work", func(r *Request) { r.WorkHours = -1 }},
		{"zero work", func(r *Request) { r.WorkHours = 0 }},
		{"deadline below work", func(r *Request) { r.DeadlineHours = r.WorkHours - 1 }},
		{"empty window", func(r *Request) { r.HistoryWindowHours = 0 }},
		{"negative window", func(r *Request) { r.HistoryWindowHours = -5 }},
		{"work above limit", func(r *Request) { r.WorkHours = MaxWorkHours + 1; r.DeadlineHours = 2 * (MaxWorkHours + 1) }},
		{"window above limit", func(r *Request) { r.HistoryWindowHours = MaxHistoryWindowHours + 1 }},
		{"negative price", func(r *Request) { r.OnDemandPrice = -1 }},
		{"too many zones", func(r *Request) { r.MaxZones = MaxZonesLimit + 1 }},
		{"negative top", func(r *Request) { r.Top = -1 }},
	}
	for _, tc := range cases {
		req := testRequest()
		tc.mut(&req)
		req.Normalize()
		if err := req.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the request", tc.name)
		} else if !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: error %v is not ErrInvalidRequest", tc.name, err)
		}
	}
	svc := testService()
	req := testRequest()
	req.WorkHours = -1
	if _, _, err := svc.Quote(context.Background(), req); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("Quote returned %v for an invalid request, want ErrInvalidRequest", err)
	}
	if got := svc.Stats().ValidationErrors.Load(); got != 1 {
		t.Fatalf("validation errors counter = %d, want 1", got)
	}
}

// TestQuoteCacheDeterminism is the tentpole's core contract: the same
// request twice returns byte-identical bodies, with the second served
// from cache.
func TestQuoteCacheDeterminism(t *testing.T) {
	svc := testService()
	ctx := context.Background()
	first, st1, err := svc.Quote(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st1 != StatusMiss {
		t.Fatalf("first quote status %q, want %q", st1, StatusMiss)
	}
	second, st2, err := svc.Quote(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st2 != StatusHit {
		t.Fatalf("second quote status %q, want %q", st2, StatusHit)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("identical requests returned different bodies")
	}
	m := svc.Stats()
	if m.CacheHits.Load() != 1 || m.CacheMisses.Load() != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", m.CacheHits.Load(), m.CacheMisses.Load())
	}

	var resp Response
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatalf("body is not a Response: %v", err)
	}
	if resp.Best.Bid <= 0 || resp.Best.PredictedCost < 0 {
		t.Fatalf("implausible best plan %+v", resp.Best)
	}
	if len(resp.Alternatives) != DefaultTop-1 {
		t.Fatalf("got %d alternatives, want %d", len(resp.Alternatives), DefaultTop-1)
	}
	if resp.Evaluated == 0 || resp.History.Samples == 0 || resp.History.Digest == "" {
		t.Fatalf("missing evaluation metadata: %+v", resp)
	}

	// A different request must not alias the cached entry.
	other := testRequest()
	other.WorkHours = 5
	third, st3, err := svc.Quote(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if st3 != StatusMiss {
		t.Fatalf("distinct request status %q, want %q", st3, StatusMiss)
	}
	if bytes.Equal(first, third) {
		t.Fatal("distinct requests returned identical bodies")
	}
}

// TestHandlerEndToEnd drives the HTTP surface: a quote round-trip with
// cache headers, the error envelope, /healthz and /metrics.
func TestHandlerEndToEnd(t *testing.T) {
	svc := testService()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/v1/quote", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	reqBody := `{"work_hours":4,"deadline_hours":8,"history_window":3,"max_zones":2}`
	resp1, body1 := post(reqBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("quote returned %s: %s", resp1.Status, body1)
	}
	if got := resp1.Header.Get("X-Quote-Cache"); got != string(StatusMiss) {
		t.Fatalf("first X-Quote-Cache = %q, want %q", got, StatusMiss)
	}
	resp2, body2 := post(reqBody)
	if got := resp2.Header.Get("X-Quote-Cache"); got != string(StatusHit) {
		t.Fatalf("second X-Quote-Cache = %q, want %q", got, StatusHit)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("HTTP bodies differ between miss and hit")
	}

	respBad, bodyBad := post(`{"work_hours":-1}`)
	if respBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid request returned %s", respBad.Status)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(bodyBad, &envelope); err != nil || envelope.Error == "" {
		t.Fatalf("bad error envelope %q (%v)", bodyBad, err)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hz, err)
	}
	hz.Body.Close()

	mx, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mx.Body)
	mx.Body.Close()
	// Three requests reached the service: miss, hit, and the invalid
	// one (rejected after being counted).
	for _, want := range []string{
		"quoted_requests_total 3",
		"quoted_cache_hits_total 1",
		"quoted_cache_misses_total 1",
		`quoted_latency_seconds{stage="total",quantile="0.99"}`,
		`quoted_latency_seconds_count{stage="eval"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}
}

// TestHistoryErrorMapsToBadGateway covers the feed-failure path.
func TestHistoryErrorMapsToBadGateway(t *testing.T) {
	svc := &Service{Source: failingSource{}}
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/quote", "application/json",
		strings.NewReader(`{"work_hours":4,"deadline_hours":8,"history_window":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("history failure returned %s, want 502", resp.Status)
	}
	if svc.Stats().HistoryErrors.Load() != 1 {
		t.Fatalf("history errors counter = %d, want 1", svc.Stats().HistoryErrors.Load())
	}
}

// failingSource always errors, standing in for an unreachable feed.
type failingSource struct{}

func (failingSource) History(context.Context, int64) (*trace.Set, string, error) {
	return nil, "", errors.New("feed down")
}

// TestCanonicalKeyPinned pins the canonical request key, the composed
// plan-cache key and the FNV-64a affinity digest byte-for-byte. The
// cluster router hashes AffinityKey to pick a backend and the backend
// caches under CacheKey; this test is the contract that keeps the two
// derived from the same canonical string, so affinity routing and
// cache identity can never drift apart silently.
func TestCanonicalKeyPinned(t *testing.T) {
	req := testRequest()
	req.Normalize()
	const wantKey = "w=4|d=8|od=2.4|h=3|z=2|t=5"
	if got := req.Key(); got != wantKey {
		t.Fatalf("Key() = %q, want %q", got, wantKey)
	}
	const digest = "00112233445566aa"
	if got, want := CacheKey(digest, req), digest+"|"+wantKey; got != want {
		t.Fatalf("CacheKey() = %q, want %q", got, want)
	}
	if got := req.AffinityKey(); got != 0x5d46f7abd76e4777 {
		t.Fatalf("AffinityKey() = %#016x, want 0x5d46f7abd76e4777", got)
	}
	// The affinity digest covers every response-shaping field: changing
	// any one of them must move the hash.
	muts := []func(*Request){
		func(r *Request) { r.WorkHours = 5 },
		func(r *Request) { r.DeadlineHours = 9 },
		func(r *Request) { r.OnDemandPrice = 1.1 },
		func(r *Request) { r.HistoryWindowHours = 4 },
		func(r *Request) { r.MaxZones = 3 },
		func(r *Request) { r.Top = 7 },
	}
	for i, mut := range muts {
		other := testRequest()
		other.Normalize()
		mut(&other)
		if other.AffinityKey() == req.AffinityKey() {
			t.Errorf("mutation %d did not change AffinityKey", i)
		}
	}
}

// TestLRUCacheEviction checks capacity bounds and recency order.
func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(2)
	c.add("a", []byte("A"))
	c.add("b", []byte("B"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted prematurely")
	}
	c.add("c", []byte("C")) // evicts b (least recently used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}
