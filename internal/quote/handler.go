package quote

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// NewHandler returns the service's HTTP API:
//
//	POST /v1/quote   — plan request (JSON body) → ranked plan table
//	GET  /healthz    — liveness probe (503 "degraded" while the
//	                   history-source breaker is open)
//	GET  /metrics    — counters and latency quantiles (text)
//
// Quote responses carry an X-Quote-Cache header (miss, hit, coalesced,
// stale); the body itself is byte-identical however it was served.
// Stale responses — last-known-good plans served while live history is
// unavailable — additionally carry X-Quote-Stale: true, so degradation
// is explicit on the wire, never silent.
func NewHandler(s *Service) http.Handler {
	return NewStreamingHandler(s, nil)
}

// NewStreamingHandler is NewHandler plus the push API when st is
// non-nil:
//
//	GET /v1/quotes/stream — SSE (or ?mode=poll long-poll) plan pushes
//
// See registerStream for the streaming wire contract.
func NewStreamingHandler(s *Service, st *Streamer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/quote", func(w http.ResponseWriter, r *http.Request) {
		req, err := DecodeRequest(r.Body)
		if err != nil {
			s.Stats().ValidationErrors.Add(1)
			writeError(w, http.StatusBadRequest, err)
			return
		}
		body, status, err := s.Quote(r.Context(), req)
		if err != nil {
			code := errorCode(r.Context(), err)
			if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
				// Back-pressure statuses tell the caller when to come
				// back; the cluster router's retry budget honors this.
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, code, err)
			return
		}
		obs.FromContext(r.Context()).SetAttr("cache", string(status))
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set("Content-Length", strconv.Itoa(len(body)))
		h.Set("X-Quote-Cache", string(status))
		if status == StatusStale {
			h.Set("X-Quote-Stale", "true")
		}
		w.Write(body)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Degraded() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("degraded: history source unavailable; serving stale plans\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.Stats().Render(w)
	})
	if st != nil {
		registerStream(mux, st)
	}
	return mux
}

// errorCode maps service errors to HTTP statuses.
func errorCode(ctx context.Context, err error) int {
	switch {
	case errors.Is(err, ErrInvalidRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDegraded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrHistory):
		return http.StatusBadGateway
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or timed out mid-evaluation.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeError sends the JSON error envelope with the given status.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}
