package quote

import (
	"strings"
	"testing"
)

// FuzzDecodeRequest exercises the request decoder: it must never
// panic, and anything it accepts must normalize and key
// deterministically; accepted-and-valid requests must survive a
// validation round-trip.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(`{"work_hours":20,"deadline_hours":30,"history_window":12}`)
	f.Add(`{"work_hours":20,"deadline_hours":30,"on_demand_price":2.4,"history_window":12,"max_zones":3,"top":5}`)
	f.Add(`{"work_hours":1e308,"deadline_hours":1e309,"history_window":-0}`)
	f.Add(`{"work_hours":-0.0001,"deadline_hours":null}`)
	f.Add(`{"work_hours":9007199254740993,"deadline_hours":2e16,"history_window":0.0000001}`)
	f.Add(`{}`)
	f.Add(`{"unknown":true}`)
	f.Add(`[{"work_hours":1}]`)
	f.Add(`{"work_hours":`)
	f.Add(``)
	f.Add(`0`)
	f.Fuzz(func(t *testing.T, in string) {
		req, err := DecodeRequest(strings.NewReader(in))
		if err != nil {
			return
		}
		req.Normalize()
		key1 := req.Key()
		key2 := req.Key()
		if key1 != key2 {
			t.Fatalf("Key not deterministic: %q vs %q", key1, key2)
		}
		if err := req.Validate(); err != nil {
			return
		}
		// Validated requests carry finite, positive planning inputs.
		if req.WorkHours <= 0 || req.DeadlineHours < req.WorkHours ||
			req.HistoryWindowHours <= 0 || req.OnDemandPrice <= 0 ||
			req.MaxZones <= 0 || req.Top <= 0 {
			t.Fatalf("Validate accepted out-of-range request %+v", req)
		}
	})
}
