package quote

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/spotapi"
	"repro/internal/trace"
)

// HistorySource supplies the trailing price history quotes are
// computed from. Implementations must be safe for concurrent use.
type HistorySource interface {
	// History returns at most the trailing window seconds of price
	// history (clamped to what the source holds) together with a digest
	// identifying the exact samples returned.
	History(ctx context.Context, window int64) (*trace.Set, string, error)
}

// Digest fingerprints a trace.Set — step, zone names and every price
// sample — as a short hex string. Equal digests mean the evaluator saw
// identical inputs, which (with the deterministic evaluation core)
// means identical plans.
func Digest(set *trace.Set) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(set.Step()))
	for _, s := range set.Series {
		h.Write([]byte(s.Zone))
		h.Write([]byte{0})
		put(uint64(s.Epoch))
		for _, p := range s.Prices {
			put(math.Float64bits(p))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// tailWindow slices the trailing window seconds off a set, clamping to
// the set's span.
func tailWindow(set *trace.Set, window int64) (*trace.Set, error) {
	if set == nil || set.NumZones() == 0 || set.Duration() <= 0 {
		return nil, errors.New("quote: history source holds no samples")
	}
	from := set.End() - window
	if from < set.Start() {
		from = set.Start()
	}
	win := set.Slice(from, set.End())
	if win.Duration() <= 0 || win.Series[0].Len() < 2 {
		return nil, fmt.Errorf("quote: history window of %d s holds no samples", window)
	}
	return win, nil
}

// StaticSource serves windows of a fixed in-memory trace — synthetic
// histories from internal/tracegen, or a recorded file.
type StaticSource struct {
	// Set is the full history; windows are sliced off its tail.
	Set *trace.Set
}

// History implements HistorySource.
func (s *StaticSource) History(_ context.Context, window int64) (*trace.Set, string, error) {
	win, err := tailWindow(s.Set, window)
	if err != nil {
		return nil, "", err
	}
	return win, Digest(win), nil
}

// FeedSource pulls history from a spotapi endpoint (cmd/pricefeedd, or
// anything speaking the AWS DescribeSpotPriceHistory format) and caches
// the fetched set for TTL so a burst of quote requests costs one
// upstream fetch. Transient upstream failures are retried on the shared
// capped-backoff schedule; a persistently dead upstream degrades to the
// last fetched set (counted, and watchdogged once its age passes
// MaxStale) rather than failing quotes outright.
type FeedSource struct {
	// Client fetches the history.
	Client *spotapi.Client
	// TTL is how long a fetched set is reused; 0 selects 10 s.
	TTL time.Duration
	// Attempts bounds fetch tries per refresh; 0 selects 3.
	Attempts int
	// Backoff is the retry schedule between tries; the zero value
	// selects a 100 ms base capped at 2 s.
	Backoff faults.Backoff
	// MaxStale is the staleness watchdog bound: serving a cached set
	// older than this counts a watchdog trip in Stats. 0 selects
	// 10×TTL.
	MaxStale time.Duration
	// Stats, when set, receives degradation counters (stale serves and
	// watchdog trips). Wire it to the service's Metrics so /metrics
	// shows feed degradation.
	Stats *Metrics

	mu        sync.Mutex
	fetchedAt time.Time
	set       *trace.Set
}

// History implements HistorySource.
func (f *FeedSource) History(ctx context.Context, window int64) (*trace.Set, string, error) {
	set, err := f.fetch(ctx)
	if err != nil {
		return nil, "", err
	}
	win, err := tailWindow(set, window)
	if err != nil {
		return nil, "", err
	}
	return win, Digest(win), nil
}

// fetch returns the cached set or refreshes it past the TTL. The lock
// is held across the fetch so concurrent callers coalesce onto one
// upstream request.
func (f *FeedSource) fetch(ctx context.Context) (*trace.Set, error) {
	ttl := f.TTL
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.set != nil && time.Since(f.fetchedAt) < ttl {
		return f.set, nil
	}
	set, err := f.fetchWithRetry(ctx)
	if err != nil {
		if f.set != nil {
			// Serve the stale window rather than failing the quote; the
			// digest keys the cache, so staleness is visible, not wrong.
			if f.Stats != nil {
				f.Stats.FeedStaleServes.Add(1)
				maxStale := f.MaxStale
				if maxStale <= 0 {
					maxStale = 10 * ttl
				}
				if time.Since(f.fetchedAt) > maxStale {
					f.Stats.WatchdogTrips.Add(1)
				}
			}
			return f.set, nil
		}
		return nil, err
	}
	f.set = set
	f.fetchedAt = time.Now()
	return set, nil
}

// fetchWithRetry tries the upstream up to Attempts times on the shared
// backoff schedule, honouring context cancellation between tries.
func (f *FeedSource) fetchWithRetry(ctx context.Context) (*trace.Set, error) {
	attempts := f.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	b := f.Backoff
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 2 * time.Second
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		set, _, err := f.Client.Fetch(ctx, time.Time{}, time.Time{}, trace.DefaultStep)
		if err == nil {
			return set, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		lastErr = err
		if attempt+1 < attempts {
			if serr := faults.Sleep(ctx, b.Delay(attempt)); serr != nil {
				return nil, serr
			}
		}
	}
	return nil, lastErr
}
