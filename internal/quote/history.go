package quote

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"repro/internal/spotapi"
	"repro/internal/trace"
)

// HistorySource supplies the trailing price history quotes are
// computed from. Implementations must be safe for concurrent use.
type HistorySource interface {
	// History returns at most the trailing window seconds of price
	// history (clamped to what the source holds) together with a digest
	// identifying the exact samples returned.
	History(ctx context.Context, window int64) (*trace.Set, string, error)
}

// Digest fingerprints a trace.Set — step, zone names and every price
// sample — as a short hex string. Equal digests mean the evaluator saw
// identical inputs, which (with the deterministic evaluation core)
// means identical plans.
func Digest(set *trace.Set) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(set.Step()))
	for _, s := range set.Series {
		h.Write([]byte(s.Zone))
		h.Write([]byte{0})
		put(uint64(s.Epoch))
		for _, p := range s.Prices {
			put(math.Float64bits(p))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// tailWindow slices the trailing window seconds off a set, clamping to
// the set's span.
func tailWindow(set *trace.Set, window int64) (*trace.Set, error) {
	if set == nil || set.NumZones() == 0 || set.Duration() <= 0 {
		return nil, errors.New("quote: history source holds no samples")
	}
	from := set.End() - window
	if from < set.Start() {
		from = set.Start()
	}
	win := set.Slice(from, set.End())
	if win.Duration() <= 0 || win.Series[0].Len() < 2 {
		return nil, fmt.Errorf("quote: history window of %d s holds no samples", window)
	}
	return win, nil
}

// StaticSource serves windows of a fixed in-memory trace — synthetic
// histories from internal/tracegen, or a recorded file.
type StaticSource struct {
	// Set is the full history; windows are sliced off its tail.
	Set *trace.Set
}

// History implements HistorySource.
func (s *StaticSource) History(_ context.Context, window int64) (*trace.Set, string, error) {
	win, err := tailWindow(s.Set, window)
	if err != nil {
		return nil, "", err
	}
	return win, Digest(win), nil
}

// FeedSource pulls history from a spotapi endpoint (cmd/pricefeedd, or
// anything speaking the AWS DescribeSpotPriceHistory format) and caches
// the fetched set for TTL so a burst of quote requests costs one
// upstream fetch.
type FeedSource struct {
	// Client fetches the history.
	Client *spotapi.Client
	// TTL is how long a fetched set is reused; 0 selects 10 s.
	TTL time.Duration

	mu        sync.Mutex
	fetchedAt time.Time
	set       *trace.Set
}

// History implements HistorySource.
func (f *FeedSource) History(ctx context.Context, window int64) (*trace.Set, string, error) {
	set, err := f.fetch(ctx)
	if err != nil {
		return nil, "", err
	}
	win, err := tailWindow(set, window)
	if err != nil {
		return nil, "", err
	}
	return win, Digest(win), nil
}

// fetch returns the cached set or refreshes it past the TTL. The lock
// is held across the fetch so concurrent callers coalesce onto one
// upstream request.
func (f *FeedSource) fetch(ctx context.Context) (*trace.Set, error) {
	ttl := f.TTL
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.set != nil && time.Since(f.fetchedAt) < ttl {
		return f.set, nil
	}
	set, _, err := f.Client.Fetch(ctx, time.Time{}, time.Time{}, trace.DefaultStep)
	if err != nil {
		if f.set != nil {
			// Serve the stale window rather than failing the quote; the
			// digest keys the cache, so staleness is visible, not wrong.
			return f.set, nil
		}
		return nil, err
	}
	f.set = set
	f.fetchedAt = time.Now()
	return set, nil
}
