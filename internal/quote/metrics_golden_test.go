package quote

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestMetricsRenderGolden pins the /metrics exposition byte-for-byte
// against testdata/metrics.golden, which was captured from the
// pre-registry hand-written Fprintf implementation. Any drift in metric
// names, ordering, quantile estimation or float formatting across the
// obs migration (or future refactors) fails here.
func TestMetricsRenderGolden(t *testing.T) {
	m := NewMetrics()
	m.Requests.Add(17)
	m.ValidationErrors.Add(2)
	m.HistoryErrors.Add(3)
	m.EvalErrors.Add(1)
	m.CacheHits.Add(9)
	m.CacheMisses.Add(8)
	m.Coalesced.Add(4)
	m.InFlight.Add(2)
	m.StalePlans.Add(5)
	m.BreakerOpens.Add(1)
	m.BreakerHalfOpens.Add(2)
	m.BreakerFastFails.Add(6)
	m.FeedStaleServes.Add(7)
	m.WatchdogTrips.Add(1)
	for _, v := range []float64{0.0007, 0.003, 0.003, 0.04, 1.7} {
		m.history.Observe(v)
	}
	for _, v := range []float64{0.011, 0.012, 0.09, 0.26} {
		m.eval.Observe(v)
	}
	for _, v := range []float64{0.012, 0.015, 0.13, 0.3, 2.2, 75} {
		m.total.Observe(v)
	}

	var buf bytes.Buffer
	m.Render(&buf)

	want, err := os.ReadFile(filepath.Join("testdata", "metrics.golden"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from the pre-migration golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
