package mixture

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

// twoModes draws from 0.6·N(0.3, 0.02) + 0.4·N(2.5, 0.3).
func twoModes(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < 0.6 {
			out[i] = 0.3 + 0.02*rng.NormFloat64()
		} else {
			out[i] = 2.5 + 0.3*rng.NormFloat64()
		}
	}
	return out
}

func TestFitRecoversTwoModes(t *testing.T) {
	samples := twoModes(4000, 7)
	m, err := Fit(samples, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Components[0], m.Components[1]
	if math.Abs(lo.Mean-0.3) > 0.05 || math.Abs(hi.Mean-2.5) > 0.1 {
		t.Fatalf("means = %.3f, %.3f", lo.Mean, hi.Mean)
	}
	if math.Abs(lo.Weight-0.6) > 0.05 || math.Abs(hi.Weight-0.4) > 0.05 {
		t.Fatalf("weights = %.3f, %.3f", lo.Weight, hi.Weight)
	}
	if hi.Stddev < lo.Stddev {
		t.Fatalf("spike component narrower than base: %.3f vs %.3f", hi.Stddev, lo.Stddev)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, 0, Options{}); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := Fit([]float64{1, 2, 3}, 2, Options{}); err == nil {
		t.Fatal("accepted too few samples")
	}
}

func TestPDFAndCDF(t *testing.T) {
	samples := twoModes(2000, 9)
	m, err := Fit(samples, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// CDF monotone from ~0 to ~1.
	prev := -1.0
	for x := -1.0; x <= 5.0; x += 0.1 {
		c := m.CDF(x)
		if c < prev-1e-12 || c < 0 || c > 1 {
			t.Fatalf("CDF(%g) = %g not monotone in [0,1]", x, c)
		}
		prev = c
	}
	if m.CDF(-2) > 1e-6 || m.CDF(6) < 1-1e-6 {
		t.Fatalf("CDF tails wrong: %g, %g", m.CDF(-2), m.CDF(6))
	}
	// PDF integrates to ≈ 1 (trapezoid over a wide range).
	var integral float64
	const dx = 0.001
	for x := -2.0; x <= 6.0; x += dx {
		integral += m.PDF(x) * dx
	}
	if math.Abs(integral-1) > 0.01 {
		t.Fatalf("PDF integral = %g", integral)
	}
	// Tail probability at the saddle between modes ≈ spike weight.
	if got := m.TailProbability(1.0); math.Abs(got-0.4) > 0.05 {
		t.Fatalf("tail(1.0) = %g, want ≈ 0.4", got)
	}
}

func TestSelectComponentsPrefersTwoForBimodal(t *testing.T) {
	samples := twoModes(3000, 11)
	m, err := SelectComponents(samples, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Components) < 2 {
		t.Fatalf("selected %d components for bimodal data", len(m.Components))
	}
}

func TestSelectComponentsUnimodal(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 1))
	samples := make([]float64, 3000)
	for i := range samples {
		samples[i] = 0.5 + 0.05*rng.NormFloat64()
	}
	m, err := SelectComponents(samples, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// BIC should not pay for many components on unimodal data; the
	// dominant component carries almost all the weight.
	maxW := 0.0
	for _, c := range m.Components {
		if c.Weight > maxW {
			maxW = c.Weight
		}
	}
	if maxW < 0.6 {
		t.Fatalf("no dominant component (max weight %.2f) on unimodal data", maxW)
	}
}

// The calibration check the repository uses: the low-volatility month
// is essentially one tight component near $0.30; the high-volatility
// month needs a spike component well above the base.
func TestGeneratorCalibrationShapes(t *testing.T) {
	low := tracegen.LowVolatility(5).Series[0].Slice(0, 10*24*trace.Hour).Prices
	mLow, err := SelectComponents(low, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Nearly all the mass sits within a nickel of the $0.30 base (BIC
	// may split the tight base into close sub-components, so the check
	// is on mass near the base, not on a single component).
	nearBase := 0.0
	for _, c := range mLow.Components {
		if math.Abs(c.Mean-0.30) <= 0.06 {
			nearBase += c.Weight
		}
	}
	if nearBase < 0.9 {
		t.Fatalf("low-vol mass near $0.30 = %.2f, want >= 0.9 (components %+v)", nearBase, mLow.Components)
	}

	high := tracegen.HighVolatility(5).Series[2].Slice(0, 10*24*trace.Hour).Prices
	mHigh, err := SelectComponents(high, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mHigh.Components) < 2 {
		t.Fatal("high-vol prices fit a single component")
	}
	base := mHigh.Components[0]
	spike := mHigh.Components[len(mHigh.Components)-1]
	if spike.Mean < base.Mean+0.5 {
		t.Fatalf("no separated spike component: base %.2f vs top %.2f", base.Mean, spike.Mean)
	}
}

func TestLogLikelihoodImproves(t *testing.T) {
	samples := twoModes(1000, 15)
	one, err := Fit(samples, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Fit(samples, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if two.LogLikelihood <= one.LogLikelihood {
		t.Fatalf("2-component LL %.1f not above 1-component %.1f", two.LogLikelihood, one.LogLikelihood)
	}
}
