// Package mixture fits one-dimensional Gaussian mixture models to spot
// price samples by expectation-maximisation.
//
// The paper's related work (Javadi, Thulasiram & Buyya, "Statistical
// modeling of spot instance prices in public cloud environments")
// characterises spot prices with mixture distributions; this package
// reproduces that methodology and the repository uses it to validate
// the synthetic generator's calibration: a low-volatility month should
// fit a single tight component near $0.30, while a high-volatility
// month needs a base component plus a wide spike component.
package mixture

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Component is one Gaussian mixture component.
type Component struct {
	Weight float64
	Mean   float64
	Stddev float64
}

// Model is a fitted mixture.
type Model struct {
	Components []Component
	// LogLikelihood of the training data under the fit.
	LogLikelihood float64
	// Iterations the EM loop ran.
	Iterations int
}

// Options control the EM fit.
type Options struct {
	// MaxIter bounds EM iterations (default 200).
	MaxIter int
	// Tol stops EM when the log-likelihood improves by less (default 1e-8).
	Tol float64
	// MinStddev floors component spreads, preventing singular
	// components collapsing onto repeated price points (default 0.005,
	// half a price cent).
	MinStddev float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MinStddev <= 0 {
		o.MinStddev = 0.005
	}
	return o
}

// ErrDegenerate reports too few samples for the requested components.
var ErrDegenerate = errors.New("mixture: too few samples")

// Fit estimates a k-component mixture from samples by EM, initialised
// from the sample quantiles (deterministic — no random restarts).
func Fit(samples []float64, k int, opts Options) (*Model, error) {
	if k < 1 {
		return nil, fmt.Errorf("mixture: k = %d must be >= 1", k)
	}
	if len(samples) < 2*k {
		return nil, fmt.Errorf("%w: %d samples for k = %d", ErrDegenerate, len(samples), k)
	}
	o := opts.withDefaults()
	n := len(samples)

	// Deterministic init: component means at spread quantiles, shared
	// stddev from the sample spread, equal weights.
	sorted := make([]float64, n)
	copy(sorted, samples)
	sort.Float64s(sorted)
	var mean, ss float64
	for _, v := range sorted {
		mean += v
	}
	mean /= float64(n)
	for _, v := range sorted {
		d := v - mean
		ss += d * d
	}
	globalSD := math.Sqrt(ss/float64(n)) + o.MinStddev
	comps := make([]Component, k)
	for j := range comps {
		q := (float64(j) + 0.5) / float64(k)
		comps[j] = Component{
			Weight: 1 / float64(k),
			Mean:   sorted[int(q*float64(n-1))],
			Stddev: globalSD,
		}
	}

	resp := make([][]float64, k) // responsibilities
	for j := range resp {
		resp[j] = make([]float64, n)
	}
	prevLL := math.Inf(-1)
	m := &Model{}
	for iter := 0; iter < o.MaxIter; iter++ {
		// E step.
		var ll float64
		for i, x := range samples {
			var total float64
			for j := range comps {
				p := comps[j].Weight * normalPDF(x, comps[j].Mean, comps[j].Stddev)
				resp[j][i] = p
				total += p
			}
			if total <= 0 {
				// An outlier beyond every component's reach: assign to
				// the nearest component.
				nearest := 0
				for j := 1; j < k; j++ {
					if math.Abs(x-comps[j].Mean) < math.Abs(x-comps[nearest].Mean) {
						nearest = j
					}
				}
				for j := range comps {
					resp[j][i] = 0
				}
				resp[nearest][i] = 1
				total = normalPDF(x, comps[nearest].Mean, comps[nearest].Stddev)
				if total <= 0 {
					total = 1e-300
				}
			} else {
				for j := range comps {
					resp[j][i] /= total
				}
			}
			ll += math.Log(total)
		}
		m.LogLikelihood = ll
		m.Iterations = iter + 1
		if ll-prevLL < o.Tol && iter > 0 {
			break
		}
		prevLL = ll

		// M step.
		for j := range comps {
			var w, mu float64
			for i, x := range samples {
				w += resp[j][i]
				mu += resp[j][i] * x
			}
			if w <= 0 {
				// A dead component: park it on the global mean with a
				// tiny weight; it can recover on later iterations.
				comps[j] = Component{Weight: 1e-6, Mean: mean, Stddev: globalSD}
				continue
			}
			mu /= w
			var varsum float64
			for i, x := range samples {
				d := x - mu
				varsum += resp[j][i] * d * d
			}
			sd := math.Sqrt(varsum / w)
			if sd < o.MinStddev {
				sd = o.MinStddev
			}
			comps[j] = Component{Weight: w / float64(n), Mean: mu, Stddev: sd}
		}
	}
	// Sort components by mean for stable reporting.
	sort.Slice(comps, func(a, b int) bool { return comps[a].Mean < comps[b].Mean })
	m.Components = comps
	return m, nil
}

// PDF evaluates the mixture density at x.
func (m *Model) PDF(x float64) float64 {
	var p float64
	for _, c := range m.Components {
		p += c.Weight * normalPDF(x, c.Mean, c.Stddev)
	}
	return p
}

// CDF evaluates the mixture distribution function at x, clamped to
// [0, 1] against floating-point drift in the component sum.
func (m *Model) CDF(x float64) float64 {
	var p float64
	for _, c := range m.Components {
		p += c.Weight * 0.5 * math.Erfc(-(x-c.Mean)/(c.Stddev*math.Sqrt2))
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// TailProbability returns P(price > x): the chance a fresh price draw
// exceeds a bid — the mixture-model counterpart of the Markov chain's
// out-of-bid prediction.
func (m *Model) TailProbability(x float64) float64 { return 1 - m.CDF(x) }

// BIC returns the Bayesian information criterion of the fit on n
// samples (lower is better), for choosing the component count.
func (m *Model) BIC(n int) float64 {
	params := float64(3*len(m.Components) - 1)
	return params*math.Log(float64(n)) - 2*m.LogLikelihood
}

// SelectComponents fits k = 1..maxK and returns the fit minimising BIC,
// the standard order-selection rule for mixtures.
func SelectComponents(samples []float64, maxK int, opts Options) (*Model, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("mixture: maxK = %d must be >= 1", maxK)
	}
	var best *Model
	bestBIC := math.Inf(1)
	for k := 1; k <= maxK; k++ {
		m, err := Fit(samples, k, opts)
		if err != nil {
			if errors.Is(err, ErrDegenerate) {
				break
			}
			return nil, err
		}
		if bic := m.BIC(len(samples)); bic < bestBIC {
			bestBIC = bic
			best = m
		}
	}
	if best == nil {
		return nil, ErrDegenerate
	}
	return best, nil
}

func normalPDF(x, mu, sd float64) float64 {
	z := (x - mu) / sd
	return math.Exp(-0.5*z*z) / (sd * math.Sqrt(2*math.Pi))
}
