package vecar

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/tracegen"
)

// synthesize generates a K-dimensional VAR(1) series with known
// coefficients for recovery tests.
func synthesize(n int, intercept []float64, a [][]float64, noise float64, seed uint64) [][]float64 {
	k := len(intercept)
	rng := rand.New(rand.NewPCG(seed, 99))
	out := make([][]float64, k)
	for j := range out {
		out[j] = make([]float64, n)
		out[j][0] = intercept[j]
	}
	for t := 1; t < n; t++ {
		for i := 0; i < k; i++ {
			v := intercept[i]
			for j := 0; j < k; j++ {
				v += a[i][j] * out[j][t-1]
			}
			out[i][t] = v + noise*rng.NormFloat64()
		}
	}
	return out
}

func TestFitRecoversVAR1(t *testing.T) {
	intercept := []float64{0.1, 0.2}
	a := [][]float64{{0.6, 0.05}, {0.02, 0.7}}
	series := synthesize(5000, intercept, a, 0.01, 1)
	m, err := Fit(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(m.Intercept[i]-intercept[i]) > 0.05 {
			t.Errorf("intercept[%d] = %g, want %g", i, m.Intercept[i], intercept[i])
		}
		for j := 0; j < 2; j++ {
			if got := m.Coef[0].At(i, j); math.Abs(got-a[i][j]) > 0.05 {
				t.Errorf("A[%d][%d] = %g, want %g", i, j, got, a[i][j])
			}
		}
	}
	if m.Obs != 4999 {
		t.Errorf("Obs = %d", m.Obs)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 1); err == nil {
		t.Fatal("Fit accepted no series")
	}
	if _, err := Fit([][]float64{{1, 2, 3}}, 0); err == nil {
		t.Fatal("Fit accepted lag 0")
	}
	if _, err := Fit([][]float64{{1, 2, 3}, {1, 2}}, 1); err == nil {
		t.Fatal("Fit accepted ragged series")
	}
	if _, err := Fit([][]float64{{1, 2, 3}}, 2); err == nil {
		t.Fatal("Fit accepted too-short series")
	}
}

func TestSelectLagPrefersTrueOrder(t *testing.T) {
	// A strong AR(2) structure: lag-2 models should beat lag-1 on AIC.
	rng := rand.New(rand.NewPCG(7, 7))
	n := 3000
	x := make([]float64, n)
	x[0], x[1] = 0.5, 0.4
	for t := 2; t < n; t++ {
		x[t] = 0.2 + 0.3*x[t-1] + 0.5*x[t-2] + 0.05*rng.NormFloat64()
	}
	m, err := SelectLag([][]float64{x}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lag < 2 {
		t.Fatalf("SelectLag chose lag %d, want >= 2", m.Lag)
	}
}

func TestSelectLagErrors(t *testing.T) {
	if _, err := SelectLag([][]float64{{1, 2, 3}}, 0); err == nil {
		t.Fatal("SelectLag accepted maxLag 0")
	}
}

func TestPredict(t *testing.T) {
	intercept := []float64{0.1, 0.2}
	a := [][]float64{{0.6, 0.0}, {0.0, 0.7}}
	series := synthesize(2000, intercept, a, 0.0, 2) // noiseless
	m, err := Fit(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	hist := [][]float64{{series[0][len(series[0])-1]}, {series[1][len(series[1])-1]}}
	pred, err := m.Predict(hist)
	if err != nil {
		t.Fatal(err)
	}
	want0 := 0.1 + 0.6*hist[0][0]
	if math.Abs(pred[0]-want0) > 1e-3 {
		t.Fatalf("pred[0] = %g, want %g", pred[0], want0)
	}
	if _, err := m.Predict([][]float64{{1}}); err == nil {
		t.Fatal("Predict accepted wrong dimension")
	}
	if _, err := m.Predict([][]float64{{}, {}}); err == nil {
		t.Fatal("Predict accepted empty history")
	}
}

// The paper's §3.1 finding: on generated traces, same-zone dependence
// dominates cross-zone dependence by an order of magnitude or more.
func TestDependenceOnGeneratedTraces(t *testing.T) {
	set := tracegen.HighVolatility(42)
	m, err := SelectLagSet(set, 6)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Dependence()
	if d.SelfMean <= d.CrossMean {
		t.Fatalf("self dependence %g not stronger than cross %g", d.SelfMean, d.CrossMean)
	}
	if d.Ratio < 5 {
		t.Errorf("self/cross ratio = %g, want >= 5 (paper reports 1-2 orders of magnitude)", d.Ratio)
	}
}

func TestFitSetLowVolatility(t *testing.T) {
	set := tracegen.LowVolatility(3)
	m, err := FitSet(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 3 || m.Lag != 2 || len(m.Coef) != 2 {
		t.Fatalf("model shape: K=%d Lag=%d", m.K, m.Lag)
	}
	// Residual covariance diagonal must be non-negative.
	for i := 0; i < m.K; i++ {
		if m.ResidCov.At(i, i) < 0 {
			t.Fatalf("negative residual variance %g", m.ResidCov.At(i, i))
		}
	}
}

func TestDependenceZeroCross(t *testing.T) {
	// Perfectly independent noiseless AR(1) zones: cross terms ≈ 0 but
	// Ratio must stay well-defined.
	intercept := []float64{0.1, 0.3}
	a := [][]float64{{0.5, 0}, {0, 0.4}}
	series := synthesize(1000, intercept, a, 0.01, 9)
	m, err := Fit(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Dependence()
	if math.IsNaN(d.Ratio) {
		t.Fatal("Ratio is NaN")
	}
	if d.Ratio < 3 {
		t.Fatalf("independent zones should show high self/cross ratio, got %g", d.Ratio)
	}
}
