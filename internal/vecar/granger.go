package vecar

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/stats"
)

// GrangerResult reports one Granger-causality F test: whether the
// lagged history of the cause series improves the prediction of the
// effect series beyond the effect's own history (and the other zones').
// The paper's §3.1 observation is precisely this combination: cross-zone
// dependencies carry some statistical significance, while their effect
// sizes stay 1–2 orders of magnitude below same-zone dependence.
type GrangerResult struct {
	// Cause and Effect are series indices.
	Cause, Effect int
	// F is the test statistic; P its upper-tail p-value under
	// F(lag, T − k) where k counts unrestricted parameters.
	F, P float64
	// RSSRestricted and RSSUnrestricted are the residual sums of
	// squares without and with the cause's lags.
	RSSRestricted, RSSUnrestricted float64
}

// Significant reports whether the test rejects at the given level.
func (g GrangerResult) Significant(alpha float64) bool { return g.P < alpha }

// GrangerTest tests whether series[cause] Granger-causes
// series[effect] at the given lag, conditioning on every series' lags
// (the standard VAR-based formulation).
func GrangerTest(series [][]float64, effect, cause, lag int) (GrangerResult, error) {
	k := len(series)
	if effect < 0 || effect >= k || cause < 0 || cause >= k {
		return GrangerResult{}, fmt.Errorf("vecar: series index out of range")
	}
	if cause == effect {
		return GrangerResult{}, fmt.Errorf("vecar: cause and effect must differ")
	}
	if lag < 1 {
		return GrangerResult{}, fmt.Errorf("vecar: lag %d must be >= 1", lag)
	}
	n := len(series[0])
	obs := n - lag
	paramsU := 1 + k*lag
	if obs <= paramsU {
		return GrangerResult{}, fmt.Errorf("%w: %d observations for %d parameters", ErrTooShort, obs, paramsU)
	}

	// Unrestricted: all series' lags. Restricted: drop the cause's.
	rssU, err := equationRSS(series, effect, lag, -1)
	if err != nil {
		return GrangerResult{}, err
	}
	rssR, err := equationRSS(series, effect, lag, cause)
	if err != nil {
		return GrangerResult{}, err
	}
	res := GrangerResult{Cause: cause, Effect: effect, RSSRestricted: rssR, RSSUnrestricted: rssU}
	df2 := float64(obs - paramsU)
	if rssU <= 0 {
		// A perfect unrestricted fit: any improvement is degenerate;
		// report no evidence rather than dividing by zero.
		res.P = 1
		return res, nil
	}
	res.F = ((rssR - rssU) / float64(lag)) / (rssU / df2)
	if res.F < 0 {
		res.F = 0 // numerical noise on near-identical fits
	}
	res.P = stats.FSurvival(res.F, float64(lag), df2)
	return res, nil
}

// equationRSS fits series[effect](t) on a constant and the lags of all
// series (omitting series drop entirely when drop >= 0) and returns the
// residual sum of squares.
func equationRSS(series [][]float64, effect, lag, drop int) (float64, error) {
	k := len(series)
	n := len(series[0])
	obs := n - lag
	cols := 1 + (k-boolToInt(drop >= 0))*lag
	z := mat.New(obs, cols)
	y := mat.New(obs, 1)
	for t := 0; t < obs; t++ {
		z.Set(t, 0, 1)
		col := 1
		for l := 1; l <= lag; l++ {
			for j := 0; j < k; j++ {
				if j == drop {
					continue
				}
				z.Set(t, col, series[j][lag+t-l])
				col++
			}
		}
		y.Set(t, 0, series[effect][lag+t])
	}
	beta, err := mat.LeastSquares(z, y)
	if err != nil {
		return 0, fmt.Errorf("vecar: granger OLS failed: %w", err)
	}
	resid := z.Mul(beta).Sub(y)
	var rss float64
	for _, v := range resid.Data {
		rss += v * v
	}
	return rss, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// GrangerMatrix runs the test for every ordered pair (cause ≠ effect).
func GrangerMatrix(series [][]float64, lag int) ([]GrangerResult, error) {
	var out []GrangerResult
	for effect := range series {
		for cause := range series {
			if cause == effect {
				continue
			}
			g, err := GrangerTest(series, effect, cause, lag)
			if err != nil {
				return nil, err
			}
			out = append(out, g)
		}
	}
	return out, nil
}

// GrangerMatrixSet runs GrangerMatrix over a trace set's zones.
func (m *Model) GrangerMatrixSeries(series [][]float64) ([]GrangerResult, error) {
	return GrangerMatrix(series, m.Lag)
}
