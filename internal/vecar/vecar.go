// Package vecar fits vector auto-regressions to multi-zone spot price
// series, reproducing the paper's §3.1 analysis: "we employed a Vector
// Auto-Regression, using the Akaike criteria to determine the optimal
// number of lags", which showed each zone depends strongly on its own
// price history while cross-zone lagged effects are 1–2 orders of
// magnitude smaller — the statistical basis for exploiting redundancy.
package vecar

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/trace"
)

// Model is a fitted VAR(p): yₜ = c + Σ_l A_l·yₜ₋l + eₜ for an
// K-dimensional series.
type Model struct {
	// K is the series dimension (number of zones).
	K int
	// Lag is the model order p.
	Lag int
	// Intercept is the constant term c (length K).
	Intercept []float64
	// Coef holds one K×K matrix per lag; Coef[l].At(i, j) is the effect
	// of zone j at lag l+1 on zone i now.
	Coef []*mat.Matrix
	// ResidCov is the K×K residual covariance matrix.
	ResidCov *mat.Matrix
	// AIC is the Akaike information criterion of the fit.
	AIC float64
	// Obs is the number of effective observations used.
	Obs int
}

// ErrTooShort reports a series too short for the requested lag.
var ErrTooShort = errors.New("vecar: series too short for requested lag")

// Fit estimates a VAR(lag) on the K series by equation-wise ordinary
// least squares. Each series[i] must have the same length.
func Fit(series [][]float64, lag int) (*Model, error) {
	k := len(series)
	if k == 0 {
		return nil, errors.New("vecar: no series")
	}
	if lag < 1 {
		return nil, fmt.Errorf("vecar: lag %d must be >= 1", lag)
	}
	n := len(series[0])
	for i, s := range series {
		if len(s) != n {
			return nil, fmt.Errorf("vecar: series %d length %d != %d", i, len(s), n)
		}
	}
	obs := n - lag
	params := 1 + k*lag
	if obs <= params {
		return nil, fmt.Errorf("%w: %d observations for %d parameters", ErrTooShort, obs, params)
	}

	// Design matrix Z: rows [1, y₁(t-1)…y_K(t-1), …, y₁(t-p)…y_K(t-p)].
	z := mat.New(obs, params)
	y := mat.New(obs, k)
	for t := 0; t < obs; t++ {
		z.Set(t, 0, 1)
		col := 1
		for l := 1; l <= lag; l++ {
			for j := 0; j < k; j++ {
				z.Set(t, col, series[j][lag+t-l])
				col++
			}
		}
		for j := 0; j < k; j++ {
			y.Set(t, j, series[j][lag+t])
		}
	}
	beta, err := mat.LeastSquares(z, y) // params × k
	if err != nil {
		return nil, fmt.Errorf("vecar: OLS failed: %w", err)
	}

	m := &Model{K: k, Lag: lag, Obs: obs, Intercept: make([]float64, k)}
	for j := 0; j < k; j++ {
		m.Intercept[j] = beta.At(0, j)
	}
	m.Coef = make([]*mat.Matrix, lag)
	for l := 0; l < lag; l++ {
		a := mat.New(k, k)
		for i := 0; i < k; i++ { // equation for zone i
			for j := 0; j < k; j++ { // regressor zone j at lag l+1
				a.Set(i, j, beta.At(1+l*k+j, i))
			}
		}
		m.Coef[l] = a
	}

	// Residual covariance (ML estimate, divisor obs).
	resid := z.Mul(beta).Sub(y)
	cov := mat.New(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			var s float64
			for t := 0; t < obs; t++ {
				s += resid.At(t, i) * resid.At(t, j)
			}
			cov.Set(i, j, s/float64(obs))
		}
	}
	m.ResidCov = cov

	det, err := mat.Det(cov)
	if err != nil {
		return nil, err
	}
	if det <= 0 {
		// Degenerate residuals (e.g. a perfectly constant zone): treat
		// as an essentially exact fit with a tiny positive determinant
		// so lag selection still works.
		det = 1e-300
	}
	// Multivariate AIC: ln|Σ| + 2·m/T with m = k²·p + k parameters.
	m.AIC = math.Log(det) + 2*float64(k*k*lag+k)/float64(obs)
	return m, nil
}

// FitSet fits a VAR(lag) on every zone series of the trace set.
func FitSet(set *trace.Set, lag int) (*Model, error) {
	series := make([][]float64, set.NumZones())
	for i, s := range set.Series {
		series[i] = s.Prices
	}
	return Fit(series, lag)
}

// SelectLag fits VAR(1)…VAR(maxLag) and returns the model minimising
// the Akaike information criterion, as the paper does.
func SelectLag(series [][]float64, maxLag int) (*Model, error) {
	if maxLag < 1 {
		return nil, fmt.Errorf("vecar: maxLag %d must be >= 1", maxLag)
	}
	var best *Model
	for lag := 1; lag <= maxLag; lag++ {
		m, err := Fit(series, lag)
		if err != nil {
			if errors.Is(err, ErrTooShort) && best != nil {
				break // longer lags are infeasible; keep the best so far
			}
			return nil, err
		}
		if best == nil || m.AIC < best.AIC {
			best = m
		}
	}
	return best, nil
}

// SelectLagSet is SelectLag over a trace set.
func SelectLagSet(set *trace.Set, maxLag int) (*Model, error) {
	series := make([][]float64, set.NumZones())
	for i, s := range set.Series {
		series[i] = s.Prices
	}
	return SelectLag(series, maxLag)
}

// Predict returns the one-step-ahead forecast given the most recent
// observations; history[j] holds zone j's series with the latest value
// last and must contain at least Lag samples.
func (m *Model) Predict(history [][]float64) ([]float64, error) {
	if len(history) != m.K {
		return nil, fmt.Errorf("vecar: history has %d series, model has %d", len(history), m.K)
	}
	for j, h := range history {
		if len(h) < m.Lag {
			return nil, fmt.Errorf("vecar: history series %d has %d < %d samples", j, len(h), m.Lag)
		}
	}
	out := make([]float64, m.K)
	copy(out, m.Intercept)
	for l := 0; l < m.Lag; l++ {
		a := m.Coef[l]
		for i := 0; i < m.K; i++ {
			for j := 0; j < m.K; j++ {
				out[i] += a.At(i, j) * history[j][len(history[j])-1-l]
			}
		}
	}
	return out, nil
}

// Dependence summarises the magnitude of lagged effects: the mean
// absolute same-zone (diagonal) coefficient versus the mean absolute
// cross-zone (off-diagonal) coefficient, and their ratio. The paper
// reports a self/cross ratio of 1–2 orders of magnitude.
type Dependence struct {
	SelfMean  float64
	CrossMean float64
	// Ratio is SelfMean / CrossMean (+Inf when CrossMean is zero).
	Ratio float64
}

// Dependence computes the self- versus cross-zone dependence summary.
func (m *Model) Dependence() Dependence {
	var self, cross float64
	var nSelf, nCross int
	for _, a := range m.Coef {
		for i := 0; i < m.K; i++ {
			for j := 0; j < m.K; j++ {
				v := math.Abs(a.At(i, j))
				if i == j {
					self += v
					nSelf++
				} else {
					cross += v
					nCross++
				}
			}
		}
	}
	d := Dependence{}
	if nSelf > 0 {
		d.SelfMean = self / float64(nSelf)
	}
	if nCross > 0 {
		d.CrossMean = cross / float64(nCross)
	}
	if d.CrossMean == 0 {
		d.Ratio = math.Inf(1)
	} else {
		d.Ratio = d.SelfMean / d.CrossMean
	}
	return d
}
