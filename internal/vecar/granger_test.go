package vecar

import (
	"math/rand/v2"
	"testing"
)

// causalPair synthesises x (autonomous AR(1)) and y, which depends on
// x's lag with the given strength.
func causalPair(n int, strength float64, seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 17))
	x := make([]float64, n)
	y := make([]float64, n)
	x[0], y[0] = 0.5, 0.5
	for t := 1; t < n; t++ {
		x[t] = 0.1 + 0.6*x[t-1] + 0.05*rng.NormFloat64()
		y[t] = 0.1 + 0.5*y[t-1] + strength*x[t-1] + 0.05*rng.NormFloat64()
	}
	return [][]float64{x, y}
}

func TestGrangerDetectsCausality(t *testing.T) {
	series := causalPair(2000, 0.4, 1)
	// x (index 0) causes y (index 1): strongly significant.
	xy, err := GrangerTest(series, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !xy.Significant(0.001) {
		t.Fatalf("x→y not detected: F=%g p=%g", xy.F, xy.P)
	}
	// y does not cause x.
	yx, err := GrangerTest(series, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if yx.Significant(0.001) {
		t.Fatalf("spurious y→x: F=%g p=%g", yx.F, yx.P)
	}
	if xy.RSSRestricted < xy.RSSUnrestricted {
		t.Fatal("restricted fit cannot beat the unrestricted one")
	}
}

func TestGrangerIndependentSeries(t *testing.T) {
	series := causalPair(2000, 0, 2) // strength 0: independent
	falsePositives := 0
	results, err := GrangerMatrix(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, g := range results {
		if g.Significant(0.001) {
			falsePositives++
		}
	}
	if falsePositives == 2 {
		t.Fatal("both directions spuriously significant on independent series")
	}
}

func TestGrangerErrors(t *testing.T) {
	series := causalPair(100, 0.2, 3)
	if _, err := GrangerTest(series, 0, 0, 1); err == nil {
		t.Fatal("accepted cause == effect")
	}
	if _, err := GrangerTest(series, 5, 0, 1); err == nil {
		t.Fatal("accepted out-of-range index")
	}
	if _, err := GrangerTest(series, 1, 0, 0); err == nil {
		t.Fatal("accepted lag 0")
	}
	tiny := causalPair(4, 0.2, 4)
	if _, err := GrangerTest(tiny, 1, 0, 2); err == nil {
		t.Fatal("accepted too-short series")
	}
}

func TestGrangerConstantSeries(t *testing.T) {
	// A constant effect series: perfect fit both ways → p = 1, no
	// division by zero.
	x := make([]float64, 200)
	y := make([]float64, 200)
	rng := rand.New(rand.NewPCG(9, 9))
	for t := range x {
		x[t] = rng.Float64()
		y[t] = 0.3
	}
	g, err := GrangerTest([][]float64{x, y}, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.P != 1 {
		t.Fatalf("constant-series p = %g, want 1", g.P)
	}
}

func TestGrangerMatrixThreeSeries(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	n := 1500
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	a[0], b[0], c[0] = 0.5, 0.5, 0.5
	for t := 1; t < n; t++ {
		a[t] = 0.1 + 0.6*a[t-1] + 0.05*rng.NormFloat64()
		b[t] = 0.1 + 0.6*b[t-1] + 0.3*a[t-1] + 0.05*rng.NormFloat64()
		c[t] = 0.1 + 0.6*c[t-1] + 0.05*rng.NormFloat64()
	}
	results, err := GrangerMatrix([][]float64{a, b, c}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for _, g := range results {
		isTrueEdge := g.Cause == 0 && g.Effect == 1
		if isTrueEdge && !g.Significant(0.001) {
			t.Fatalf("true edge a→b missed: p=%g", g.P)
		}
		if !isTrueEdge && g.Significant(1e-6) {
			t.Fatalf("spurious edge %d→%d: p=%g", g.Cause, g.Effect, g.P)
		}
	}
}
