package vecar

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/tracegen"
)

// fitKnownVAR1 builds a Model directly with known coefficients.
func knownVAR1(a [][]float64) *Model {
	k := len(a)
	coef := mat.New(k, k)
	for i := range a {
		for j := range a[i] {
			coef.Set(i, j, a[i][j])
		}
	}
	return &Model{K: k, Lag: 1, Intercept: make([]float64, k), Coef: []*mat.Matrix{coef}}
}

func TestImpulseResponseVAR1IsPower(t *testing.T) {
	m := knownVAR1([][]float64{{0.5, 0.1}, {0.0, 0.4}})
	irf, err := m.ImpulseResponse(3)
	if err != nil {
		t.Fatal(err)
	}
	// Φ_h = A^h for a VAR(1).
	a := m.Coef[0]
	want := mat.Identity(2)
	for h := 0; h <= 3; h++ {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if math.Abs(irf[h].At(i, j)-want.At(i, j)) > 1e-12 {
					t.Fatalf("Φ_%d[%d][%d] = %g, want %g", h, i, j, irf[h].At(i, j), want.At(i, j))
				}
			}
		}
		want = a.Mul(want)
	}
}

func TestImpulseResponseErrors(t *testing.T) {
	m := knownVAR1([][]float64{{0.5}})
	if _, err := m.ImpulseResponse(-1); err == nil {
		t.Fatal("accepted negative horizon")
	}
}

func TestCrossImpactDiagonalModel(t *testing.T) {
	// Fully decoupled zones: cross impact exactly zero.
	m := knownVAR1([][]float64{{0.5, 0}, {0, 0.6}})
	c, err := m.CrossImpact(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.CrossTotal != 0 || !math.IsInf(c.Ratio, 1) {
		t.Fatalf("cross impact = %+v", c)
	}
	if c.SelfTotal <= 0 {
		t.Fatalf("self impact = %g", c.SelfTotal)
	}
}

func TestCrossImpactOnGeneratedTraces(t *testing.T) {
	set := tracegen.HighVolatility(61)
	m, err := SelectLagSet(set, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.CrossImpact(24) // two hours of 5-minute steps
	if err != nil {
		t.Fatal(err)
	}
	// Shock propagation across zones stays an order of magnitude below
	// the shock's own echo — the impulse-domain form of §3.1.
	if c.Ratio < 5 {
		t.Fatalf("impulse self/cross ratio = %g", c.Ratio)
	}
}

func TestStability(t *testing.T) {
	stable := knownVAR1([][]float64{{0.5, 0.1}, {0.05, 0.4}})
	ok, err := stable.Stable(64, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stable VAR reported unstable")
	}
	explosive := knownVAR1([][]float64{{1.2, 0}, {0, 0.5}})
	ok, err = explosive.Stable(64, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("explosive VAR reported stable")
	}
	// Fitted market chains must be stable (mean-reverting prices).
	set := tracegen.LowVolatility(71)
	m, err := FitSet(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = m.Stable(512, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("fitted market VAR is not stable")
	}
}
