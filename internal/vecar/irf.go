package vecar

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// ImpulseResponse returns the VAR's moving-average coefficients
// Φ_0 … Φ_horizon: Φ_h[i][j] is the response of zone i, h steps after a
// unit shock to zone j. Φ_0 = I and Φ_h = Σ_{l=1..min(h,p)} A_l·Φ_{h−l},
// the standard recursion. For the paper's §3.1 story the interesting
// quantity is how little of a shock crosses zones: see CrossImpact.
func (m *Model) ImpulseResponse(horizon int) ([]*mat.Matrix, error) {
	if horizon < 0 {
		return nil, fmt.Errorf("vecar: negative horizon")
	}
	out := make([]*mat.Matrix, horizon+1)
	out[0] = mat.Identity(m.K)
	for h := 1; h <= horizon; h++ {
		phi := mat.New(m.K, m.K)
		for l := 1; l <= m.Lag && l <= h; l++ {
			phi = phi.Add(m.Coef[l-1].Mul(out[h-l]))
		}
		out[h] = phi
	}
	return out, nil
}

// CrossImpact summarises an impulse-response set as the cumulative
// absolute response, split into same-zone (a shock's echo in its own
// zone) and cross-zone components, plus their ratio — the
// impulse-domain counterpart of Dependence.
type CrossImpact struct {
	SelfTotal  float64
	CrossTotal float64
	// Ratio is SelfTotal / CrossTotal (+Inf when cross is zero).
	Ratio float64
}

// CrossImpact computes the summary over the given horizon.
func (m *Model) CrossImpact(horizon int) (CrossImpact, error) {
	irf, err := m.ImpulseResponse(horizon)
	if err != nil {
		return CrossImpact{}, err
	}
	var c CrossImpact
	for _, phi := range irf[1:] { // Φ_0 = I carries no information
		for i := 0; i < m.K; i++ {
			for j := 0; j < m.K; j++ {
				v := math.Abs(phi.At(i, j))
				if i == j {
					c.SelfTotal += v
				} else {
					c.CrossTotal += v
				}
			}
		}
	}
	if c.CrossTotal == 0 {
		c.Ratio = math.Inf(1)
	} else {
		c.Ratio = c.SelfTotal / c.CrossTotal
	}
	return c, nil
}

// Stable reports whether the impulse responses die out over the given
// horizon (the largest entry of the final Φ is below tol) — a sanity
// check that the fitted VAR describes a mean-reverting market rather
// than an explosive one.
func (m *Model) Stable(horizon int, tol float64) (bool, error) {
	irf, err := m.ImpulseResponse(horizon)
	if err != nil {
		return false, err
	}
	return irf[horizon].MaxAbs() < tol, nil
}
