// Package repro reproduces "Exploiting Redundancy for Cost-Effective,
// Time-Constrained Execution of HPC Applications on Amazon EC2"
// (Marathe et al., HPDC'14) as a Go library.
//
// The implementation lives under internal/:
//
//   - internal/trace, internal/tracegen — spot price histories and the
//     calibrated synthetic market generator;
//   - internal/market — EC2 billing rules and queuing-delay model;
//   - internal/sim — the Algorithm 1 simulation engine with the
//     deadline guard;
//   - internal/core — the checkpoint policies (Periodic, Markov-Daly,
//     Rising Edge, Threshold, Large-bid) and the Adaptive strategy;
//   - internal/markov, internal/daly, internal/vecar, internal/mat —
//     the prediction substrates;
//   - internal/experiment, internal/report, internal/stats — the
//     evaluation harness that regenerates every table and figure.
//
// Entry points: the binaries under cmd/ (paperfigs, spotsim, tracegen,
// sweep), the runnable examples under examples/, and the benchmark
// harness in bench_test.go.
package repro
